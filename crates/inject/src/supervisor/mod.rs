//! Fault-tolerant supervisor: survive workers that really die — or that
//! live on the far side of a hostile network.
//!
//! The thread-mode engine in [`crate::runner`] crash-isolates *unwinding*
//! panics, but a fault campaign can provoke failures no in-process mechanism
//! survives: `std::process::abort`, stack exhaustion, the OOM killer, or a
//! livelock that outruns the hang guard. This module runs trials in
//! disposable **worker subprocesses** — or in **worker daemons on other
//! machines** — so the supervising campaign outlives all of them.
//!
//! ## Architecture
//!
//! [`run_supervised`] shards the pending trial indices into contiguous
//! blocks whose boundaries depend only on the trial index (`trial /
//! shard_size`), so the shard layout — and therefore every record — is
//! invariant under the worker count. Each supervisor-side handler thread
//! leases shards to a worker over a [`transport::Transport`]:
//!
//! * **Pipe** ([`TransportKind::Pipe`], the default): each lease spawns the
//!   current executable with a hidden `__worker` argv (hosting binaries
//!   route it to [`worker_main`]), passing the campaign config and the
//!   shard's trials as a range list (`"0-5,9,11-20"`), and reads
//!   line-delimited JSON from its stdout.
//! * **TCP** ([`TransportKind::Tcp`]): each handler holds one persistent
//!   connection to a `campaign --listen` worker daemon ([`serve_main`]),
//!   sends the campaign config once per connection and a lease frame per
//!   shard, and reads length-delimited frames back.
//!
//! Both channels carry the same protocol:
//!
//! 1. a handshake — `{"mbavf_worker": 1, "fingerprint": <u64>}` — that the
//!    supervisor validates against its own config fingerprint,
//! 2. one record line per trial, in order, flushed per line (checkpoint
//!    record fields plus `"us"`, the trial's wall-clock in microseconds),
//! 3. a `{"done": N}` sentinel on success; or `{"error": "<detail>"}` and
//!    (for subprocesses) exit code 10 for a fatal configuration error.
//!
//! The TCP stream additionally interleaves `{"hb": N}` heartbeat frames.
//!
//! ## Failure policy
//!
//! While a worker holds a shard, a [`lease::Lease`] tracks the revocation
//! deadline. The pipe transport keeps a fixed whole-shard **watchdog**
//! (`shard_timeout`); the TCP transport uses a **sliding lease**
//! (`lease_timeout`) renewed by progress — records, or heartbeat frames
//! whose completion count advanced, so a livelocked remote executor with a
//! beating heart still loses its lease. A missed deadline revokes the lease
//! (kill the subprocess / sever the socket) and retries the shard's
//! *remaining* trials with bounded, per-handler-jittered exponential
//! backoff; because records arrive in trial order and are committed through
//! an idempotent [`merge`] keyed by trial index, a reconnect simply
//! re-leases from the first missing trial, and duplicated or reordered
//! records can never double-count. A **remote endpoint that stays
//! unreachable** hands its shard — failure history intact — back to the
//! queue for any surviving endpoint to pick up.
//!
//! After `max_retries` consecutive no-progress failures a shard's head trial
//! is **poisoned**: excluded from the summary (the campaign completes with
//! N−1 trials, counted honestly), quarantined into a fingerprint-validated
//! `*.poison.json` sidecar next to the checkpoint, given a standard repro
//! bundle, and skipped by every future resume. More than `max_poison` total
//! poisoned trials aborts the campaign with
//! [`SupervisorError::TooManyPoisoned`] — mass poisoning means the
//! environment, not the trials, is broken.
//!
//! ## Graceful degradation
//!
//! If no worker has produced anything yet — subprocesses cannot be spawned,
//! the first line is not a valid handshake, or no TCP endpoint ever
//! connects — the supervisor warns and falls back one isolation level (TCP →
//! local processes → threads) instead of failing the campaign: same
//! checkpoint, bit-identical records. Once work has been committed the
//! fallback is off the table, and losing every endpoint raises
//! [`TransportError::AllEndpointsLost`].

use crate::campaign::{
    golden_shape, run_one_arena, CampaignConfig, CampaignSummary, FaultSite, GoldenShape, Outcome,
    OutcomeKind, SingleBitRecord, SiteSampler,
};
use crate::checkpoint;
use crate::durable::{atomic_write_durable, jittered_backoff};
use crate::json::{self, Value};
use crate::runner::{
    final_save, quarantine_corrupt, restore_durable, run_campaign_with, CampaignReport,
    LatencyStats, RemoteCommit, RunnerConfig, Shared, WorkerGuard,
};
use mbavf_core::error::{InjectError, SupervisorError, TransportError};
use mbavf_workloads::{by_name, Scale, Workload};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub mod audit;
pub(crate) mod lease;
pub mod merge;
mod serve;
pub(crate) mod transport;

pub use self::audit::AuditPolicy;
pub use self::serve::serve_main;

use self::audit::TrustLedger;
use self::lease::{Lease, LeaseQueue, Shard};
use self::transport::{render_hello, ChannelEvent, PipeTransport, TcpTransport, Transport};

/// Version of the supervisor↔worker protocol (the handshake's
/// `mbavf_worker` field, and the hello frame's `mbavf_hello` field). Bumped
/// whenever the line or frame format changes.
pub const PROTOCOL_VERSION: u64 = 1;

/// Version of the `*.poison.json` sidecar format.
pub const POISON_VERSION: u64 = 1;

/// How a campaign executes its trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsolationMode {
    /// In-process worker threads (panic isolation only).
    Thread,
    /// Worker subprocesses under [`run_supervised`] (survives aborts,
    /// livelocks, OOM kills).
    Process,
    /// Remote worker daemons over TCP ([`TransportKind::Tcp`]): process
    /// isolation plus lease-based shard ownership, reconnect-with-resume,
    /// and endpoint failover.
    Tcp,
}

impl IsolationMode {
    /// Parse the CLI spelling (`"thread"` / `"process"` / `"tcp"`).
    pub fn parse(s: &str) -> Option<IsolationMode> {
        match s {
            "thread" => Some(IsolationMode::Thread),
            "process" => Some(IsolationMode::Process),
            "tcp" => Some(IsolationMode::Tcp),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            IsolationMode::Thread => "thread",
            IsolationMode::Process => "process",
            IsolationMode::Tcp => "tcp",
        }
    }
}

/// How the supervisor reaches its workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportKind {
    /// Disposable local `__worker` subprocesses, one per lease,
    /// line-delimited JSON over piped stdout.
    Pipe,
    /// Persistent connections to `campaign --listen` worker daemons,
    /// length-delimited frames, one handler per endpoint.
    Tcp {
        /// Worker daemon `host:port` endpoints.
        endpoints: Vec<String>,
    },
}

/// Supervision knobs (the execution policy; [`RunnerConfig`] still owns
/// checkpointing, bundles, and the heartbeat).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Concurrent worker subprocesses; `0` means one per available CPU.
    /// Ignored by the TCP transport, which runs one handler per endpoint.
    pub workers: usize,
    /// Trials per worker shard. Shard boundaries are `trial / shard_size`,
    /// so records are invariant under the worker count.
    pub shard_size: usize,
    /// Pipe watchdog: a worker spawn that has not finished its shard within
    /// this wall-clock budget is killed and retried.
    pub shard_timeout: Duration,
    /// Consecutive no-progress worker failures tolerated before the shard's
    /// first remaining trial is poisoned. Progress resets the count.
    pub max_retries: u32,
    /// First retry delay; doubles per consecutive failure. The actual sleep
    /// is jittered deterministically per handler so workers that died
    /// together do not respawn together.
    pub backoff_base: Duration,
    /// Ceiling on the retry delay.
    pub backoff_cap: Duration,
    /// Abort the campaign once more than this many trials (including ones
    /// poisoned by earlier runs) are poisoned.
    pub max_poison: usize,
    /// Poison sidecar path. `None` derives `<checkpoint>.poison.json` when
    /// a checkpoint is configured (no checkpoint → poison kept in-memory
    /// only, in the report).
    pub poison_path: Option<PathBuf>,
    /// Override the worker argv (tests use shell scripts). `None` spawns
    /// `current_exe __worker`. Config flags are appended either way.
    /// Pipe transport only.
    pub worker_cmd: Option<Vec<String>>,
    /// Extra environment variables for workers (e.g. fault drills). Pipe
    /// transport only — TCP daemons inherit their own environment.
    pub worker_env: Vec<(String, String)>,
    /// How workers are reached: local subprocess pipes (default) or TCP
    /// connections to `campaign --listen` daemons.
    pub transport: TransportKind,
    /// TCP lease: a remote worker whose *progress* stalls for this long
    /// loses its shard (revoked and re-leased, possibly elsewhere). Renewed
    /// by records and by heartbeat frames whose completion count advanced —
    /// never by heartbeats alone.
    pub lease_timeout: Duration,
    /// Trust-but-verify: deterministically sample worker records for local
    /// re-execution before commit, and quarantine endpoints whose records
    /// diverge or conflict (see [`AuditPolicy`]). `None` trusts workers
    /// unconditionally — the pre-audit behavior.
    pub audit: Option<AuditPolicy>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            shard_size: 64,
            shard_timeout: Duration::from_secs(60),
            max_retries: 2,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            max_poison: 8,
            poison_path: None,
            worker_cmd: None,
            worker_env: Vec::new(),
            transport: TransportKind::Pipe,
            lease_timeout: Duration::from_secs(30),
            audit: None,
        }
    }
}

/// One quarantined trial: it repeatedly killed its worker and was excluded
/// from the campaign summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoisonEntry {
    /// Campaign trial index.
    pub trial: u64,
    /// The fault the trial would have injected.
    pub site: FaultSite,
    /// The last worker failure observed (watchdog, exit signal, lease
    /// expiry, connection loss).
    pub reason: String,
    /// Worker attempts the trial consumed before being poisoned.
    pub attempts: u32,
}

/// Render a sorted trial list compactly: `"0-5,9,11-20"`.
pub fn format_trials(trials: &[u64]) -> String {
    let mut out = String::new();
    let mut i = 0;
    while i < trials.len() {
        let start = trials[i];
        let mut end = start;
        while i + 1 < trials.len() && trials[i + 1] == end + 1 {
            i += 1;
            end = trials[i];
        }
        if !out.is_empty() {
            out.push(',');
        }
        if start == end {
            let _ = write!(out, "{start}");
        } else {
            let _ = write!(out, "{start}-{end}");
        }
        i += 1;
    }
    out
}

/// Parse [`format_trials`] output back into a trial list.
///
/// # Errors
///
/// A description of the first malformed segment (bad integer, inverted
/// range, empty list).
pub fn parse_trials(s: &str) -> Result<Vec<u64>, String> {
    let mut trials = Vec::new();
    for seg in s.split(',') {
        let parse = |t: &str| t.parse::<u64>().map_err(|_| format!("bad trial index {t:?}"));
        match seg.split_once('-') {
            Some((a, b)) => {
                let (a, b) = (parse(a)?, parse(b)?);
                if a > b {
                    return Err(format!("inverted range {seg:?}"));
                }
                trials.extend(a..=b);
            }
            None => trials.push(parse(seg)?),
        }
    }
    if trials.is_empty() {
        return Err("empty trial list".into());
    }
    Ok(trials)
}

/// Default sidecar location: `<checkpoint>.poison.json` (appended, so the
/// checkpoint's own extension survives).
pub fn default_poison_path(checkpoint: &Path) -> PathBuf {
    let mut name = checkpoint.as_os_str().to_os_string();
    name.push(".poison.json");
    PathBuf::from(name)
}

/// Serialize a poison sidecar document.
pub fn render_poison(workload: &str, config_hash: u64, entries: &[PoisonEntry]) -> String {
    let mut out = String::with_capacity(96 + entries.len() * 128);
    let _ = write!(out, "{{\n  \"version\": {POISON_VERSION},\n  \"workload\": ");
    json::write_str(&mut out, workload);
    let _ = write!(out, ",\n  \"config_hash\": {config_hash},\n  \"poisoned\": [");
    for (i, e) in entries.iter().enumerate() {
        let sep = if i == 0 { "\n" } else { ",\n" };
        let _ = write!(
            out,
            "{sep}    {{\"trial\": {}, \"wg\": {}, \"after\": {}, \"reg\": {}, \"lane\": {}, \"bit\": {}, \"attempts\": {}, \"reason\": ",
            e.trial, e.site.wg, e.site.after_retired, e.site.reg, e.site.lane, e.site.bit, e.attempts,
        );
        json::write_str(&mut out, &e.reason);
        out.push('}');
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Durably and atomically write the poison sidecar at `path` (temp file,
/// `sync_all`, rename, parent-directory fsync — the same discipline as
/// checkpoints, through the same failpoint-aware layer).
///
/// # Errors
///
/// [`SupervisorError::Io`] if the write cannot be made durable after
/// bounded retry.
pub fn save_poison(
    path: &Path,
    workload: &str,
    config_hash: u64,
    entries: &[PoisonEntry],
) -> Result<(), SupervisorError> {
    atomic_write_durable(path, render_poison(workload, config_hash, entries).as_bytes()).map_err(
        |e| SupervisorError::Io { path: path.display().to_string(), detail: e.to_string() },
    )
}

/// A loaded poison sidecar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoisonSidecar {
    /// Workload the poisoning campaign ran over.
    pub workload: String,
    /// Fingerprint of the poisoning campaign's configuration.
    pub config_hash: u64,
    /// Quarantined trials, sorted by trial index.
    pub entries: Vec<PoisonEntry>,
}

/// Load and validate the poison sidecar at `path`.
///
/// # Errors
///
/// [`SupervisorError::Io`] if the file cannot be read;
/// [`SupervisorError::Protocol`] for parse or schema violations (the caller
/// quarantines those). Fingerprint validation is the caller's job.
pub fn load_poison(path: &Path) -> Result<PoisonSidecar, SupervisorError> {
    let text = std::fs::read_to_string(path).map_err(|e| SupervisorError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    })?;
    let bad = |detail: String| SupervisorError::Protocol { detail };
    let doc = json::parse(&text).map_err(|d| bad(format!("poison sidecar: {d}")))?;
    let version = doc
        .get("version")
        .and_then(Value::as_u64)
        .ok_or_else(|| bad("poison sidecar: missing \"version\"".into()))?;
    if version != POISON_VERSION {
        return Err(bad(format!("poison sidecar: foreign version {version}")));
    }
    let workload = doc
        .get("workload")
        .and_then(Value::as_str)
        .ok_or_else(|| bad("poison sidecar: missing \"workload\"".into()))?
        .to_string();
    let config_hash = doc
        .get("config_hash")
        .and_then(Value::as_u64)
        .ok_or_else(|| bad("poison sidecar: missing \"config_hash\"".into()))?;
    let raw = doc
        .get("poisoned")
        .and_then(Value::as_arr)
        .ok_or_else(|| bad("poison sidecar: missing \"poisoned\"".into()))?;
    let mut entries = Vec::with_capacity(raw.len());
    for (i, e) in raw.iter().enumerate() {
        let field = |k: &str| {
            e.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| bad(format!("poison entry {i}: missing \"{k}\"")))
        };
        entries.push(PoisonEntry {
            trial: field("trial")?,
            site: FaultSite {
                wg: u32::try_from(field("wg")?)
                    .map_err(|_| bad(format!("poison entry {i}: \"wg\" out of range")))?,
                after_retired: field("after")?,
                reg: u8::try_from(field("reg")?)
                    .map_err(|_| bad(format!("poison entry {i}: \"reg\" out of range")))?,
                lane: u8::try_from(field("lane")?)
                    .map_err(|_| bad(format!("poison entry {i}: \"lane\" out of range")))?,
                bit: u8::try_from(field("bit")?)
                    .map_err(|_| bad(format!("poison entry {i}: \"bit\" out of range")))?,
            },
            attempts: field("attempts")? as u32,
            reason: e
                .get("reason")
                .and_then(Value::as_str)
                .ok_or_else(|| bad(format!("poison entry {i}: missing \"reason\"")))?
                .to_string(),
        });
    }
    entries.sort_by_key(|e| e.trial);
    entries.dedup_by_key(|e| e.trial);
    Ok(PoisonSidecar { workload, config_hash, entries })
}

/// Load the sidecar, quarantining malformed files (like checkpoint
/// corruption: moved to `<path>.corrupt` with a warning, treated as
/// absent). A fingerprint mismatch is a hard error — the sidecar belongs to
/// a different campaign.
fn load_or_quarantine_poison(
    path: &Path,
    fingerprint: u64,
) -> Result<Vec<PoisonEntry>, SupervisorError> {
    if !path.exists() {
        return Ok(Vec::new());
    }
    match load_poison(path) {
        Ok(sidecar) => {
            if sidecar.config_hash != fingerprint {
                return Err(SupervisorError::SidecarMismatch {
                    expected: fingerprint,
                    found: sidecar.config_hash,
                });
            }
            Ok(sidecar.entries)
        }
        Err(SupervisorError::Protocol { detail }) => {
            match quarantine_corrupt(path) {
                Some(q) => eprintln!(
                    "warning: corrupt poison sidecar at {} ({detail}); moved to {}",
                    path.display(),
                    q.display()
                ),
                None => eprintln!(
                    "warning: corrupt poison sidecar at {} ({detail}); quarantine failed, ignoring it",
                    path.display()
                ),
            }
            Ok(Vec::new())
        }
        Err(e) => Err(e),
    }
}

pub(crate) fn render_record_line(r: &SingleBitRecord, us: u64) -> String {
    let mut out = String::with_capacity(128);
    let _ = write!(
        out,
        "{{\"trial\": {}, \"wg\": {}, \"after\": {}, \"reg\": {}, \"lane\": {}, \"bit\": {}, \"outcome\": \"{}\", ",
        r.trial,
        r.site.wg,
        r.site.after_retired,
        r.site.reg,
        r.site.lane,
        r.site.bit,
        r.outcome.kind().as_str(),
    );
    if let Outcome::Crash { reason } = &r.outcome {
        out.push_str("\"reason\": ");
        json::write_str(&mut out, reason);
        out.push_str(", ");
    }
    let _ = write!(out, "\"read\": {}, \"us\": {us}}}", r.read_before_overwrite);
    out
}

fn parse_record_line(v: &Value) -> Result<(SingleBitRecord, u64), String> {
    let field = |k: &str| {
        v.get(k).and_then(Value::as_u64).ok_or_else(|| format!("missing or non-integer \"{k}\""))
    };
    let kind = v
        .get("outcome")
        .and_then(Value::as_str)
        .and_then(OutcomeKind::parse)
        .ok_or_else(|| "missing or unknown \"outcome\"".to_string())?;
    let outcome = match kind {
        OutcomeKind::Masked => Outcome::Masked,
        OutcomeKind::Sdc => Outcome::Sdc,
        OutcomeKind::Hang => Outcome::Hang,
        OutcomeKind::Crash => Outcome::Crash {
            reason: v
                .get("reason")
                .and_then(Value::as_str)
                .unwrap_or("unrecorded crash reason")
                .to_string(),
        },
    };
    let read =
        v.get("read").and_then(Value::as_bool).ok_or_else(|| "missing \"read\"".to_string())?;
    let record = SingleBitRecord {
        trial: field("trial")?,
        site: FaultSite {
            wg: u32::try_from(field("wg")?).map_err(|_| "\"wg\" out of range".to_string())?,
            after_retired: field("after")?,
            reg: u8::try_from(field("reg")?).map_err(|_| "\"reg\" out of range".to_string())?,
            lane: u8::try_from(field("lane")?).map_err(|_| "\"lane\" out of range".to_string())?,
            bit: u8::try_from(field("bit")?).map_err(|_| "\"bit\" out of range".to_string())?,
        },
        outcome,
        read_before_overwrite: read,
    };
    Ok((record, field("us")?))
}

/// The campaign-config flag pairs every worker needs (everything but
/// `--trials` / `--attempt`, which are per-lease).
pub(crate) fn campaign_flags(workload_name: &str, cfg: &CampaignConfig) -> Vec<String> {
    let scale = match cfg.scale {
        Scale::Test => "test",
        Scale::Paper => "paper",
    };
    [
        ("--workload", workload_name.to_string()),
        ("--seed", cfg.seed.to_string()),
        ("--scale", scale.to_string()),
        ("--hang-factor", cfg.hang_factor.to_string()),
        ("--wrap-oob", cfg.wrap_oob.to_string()),
        ("--mode-bits", cfg.mode_bits.to_string()),
    ]
    .into_iter()
    .flat_map(|(k, v)| [k.to_string(), v])
    .collect()
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

pub(crate) fn drill(var: &str) -> Option<u64> {
    std::env::var(var).ok()?.parse().ok()
}

/// Deliver SIGKILL to this process — the kill drill simulates an external
/// killer (OOM, operator), which no in-process handler can observe.
pub(crate) fn sigkill_self() -> ! {
    let pid = std::process::id().to_string();
    let _ = Command::new("kill").args(["-9", &pid]).status();
    // No `kill` binary on PATH: abort still exercises the death path.
    std::process::abort();
}

pub(crate) fn flag<'a>(args: &'a [String], name: &str) -> Result<&'a str, String> {
    args.windows(2)
        .find(|w| w[0] == name)
        .map(|w| w[1].as_str())
        .ok_or_else(|| format!("missing worker flag {name}"))
}

/// The worker-side trial engine: golden run, sampler, and arena built once,
/// then reused for every trial of every shard. The `__worker` subprocess
/// builds one per invocation; the `__serve` daemon builds one per
/// connection and amortizes it across leases.
pub(crate) struct ShardExecutor {
    cfg: CampaignConfig,
    golden: GoldenShape,
    sampler: SiteSampler,
    arena: mbavf_sim::TrialArena,
}

impl ShardExecutor {
    /// Run the golden reference and prepare the trial arena.
    pub(crate) fn new(workload: &Workload, cfg: CampaignConfig) -> Result<ShardExecutor, String> {
        let golden = golden_shape(workload, &cfg).map_err(|d| format!("golden run failed: {d}"))?;
        let sampler = SiteSampler::new(&golden.per_wg_retired, golden.num_vregs)
            .map_err(|e| e.to_string())?;
        let inst = workload.build(cfg.scale);
        let arena =
            mbavf_sim::TrialArena::new(inst.program, inst.mem, inst.workgroups, cfg.wrap_oob);
        Ok(ShardExecutor { cfg, golden, sampler, arena })
    }

    /// Execute one trial, returning its record and wall-clock microseconds.
    pub(crate) fn run_trial(&mut self, trial: u64) -> (SingleBitRecord, u64) {
        let site = self.sampler.sample(self.cfg.seed, trial);
        let t0 = Instant::now();
        let (outcome, read) =
            run_one_arena(&mut self.arena, &self.golden, site, self.cfg.mode_bits.max(1));
        let us = t0.elapsed().as_micros() as u64;
        (SingleBitRecord { trial, site, outcome, read_before_overwrite: read }, us)
    }
}

fn worker_run(args: &[String]) -> Result<(), String> {
    let workload_name = flag(args, "--workload")?;
    let parse_u64 = |name: &str| -> Result<u64, String> {
        flag(args, name)?.parse::<u64>().map_err(|_| format!("bad integer for {name}"))
    };
    let scale = match flag(args, "--scale")? {
        "test" => Scale::Test,
        "paper" => Scale::Paper,
        other => return Err(format!("unknown scale {other:?}")),
    };
    let wrap_oob = match flag(args, "--wrap-oob")? {
        "true" => true,
        "false" => false,
        other => return Err(format!("bad --wrap-oob {other:?}")),
    };
    let trials = parse_trials(flag(args, "--trials")?)?;
    let attempt = parse_u64("--attempt")? as u32;
    let cfg = CampaignConfig {
        seed: parse_u64("--seed")?,
        // The budget is excluded from the fingerprint; any value covering
        // the shard works.
        injections: trials.len().max(1),
        scale,
        hang_factor: parse_u64("--hang-factor")?,
        wrap_oob,
        mode_bits: u8::try_from(parse_u64("--mode-bits")?)
            .map_err(|_| "--mode-bits out of range".to_string())?,
    };
    let workload =
        by_name(workload_name).ok_or_else(|| format!("unknown workload {workload_name:?}"))?;
    let fingerprint = checkpoint::config_fingerprint(workload.name, &cfg);

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let io = |e: std::io::Error| format!("worker stdout: {e}");
    writeln!(out, "{{\"mbavf_worker\": {PROTOCOL_VERSION}, \"fingerprint\": {fingerprint}}}")
        .map_err(io)?;
    out.flush().map_err(io)?;

    let mut exec = ShardExecutor::new(&workload, cfg)?;
    for &trial in &trials {
        // Fault drills, used by torture tests and the CI smoke job. Checked
        // only here, in the worker: the supervisor never drills itself.
        if drill("MBAVF_ABORT_DRILL") == Some(trial) {
            std::process::abort();
        }
        if attempt == 0 && drill("MBAVF_KILL_DRILL") == Some(trial) {
            sigkill_self();
        }
        if attempt == 0 && drill("MBAVF_TRUNC_DRILL") == Some(trial) {
            // A torn stdout write: partial line, no newline, clean exit.
            let _ = write!(out, "{{\"trial\": {trial}, \"wg\": 0");
            let _ = out.flush();
            return Ok(());
        }
        let (record, us) = exec.run_trial(trial);
        writeln!(out, "{}", render_record_line(&record, us)).map_err(io)?;
        out.flush().map_err(io)?;
    }
    writeln!(out, "{{\"done\": {}}}", trials.len()).map_err(io)?;
    out.flush().map_err(io)?;
    Ok(())
}

/// Entry point for the hidden `__worker` argv. Hosting binaries (the
/// campaign CLI, `harness = false` test binaries) must call this before
/// anything else when `argv[1] == "__worker"`, passing the remaining
/// arguments, and exit with the returned code.
///
/// On a fatal configuration error the worker emits `{"error": "<detail>"}`
/// and returns exit code 10, which the supervisor reports as
/// [`SupervisorError::WorkerFatal`] instead of retrying.
pub fn worker_main(args: &[String]) -> i32 {
    match worker_run(args) {
        Ok(()) => 0,
        Err(detail) => {
            let mut line = String::from("{\"error\": ");
            json::write_str(&mut line, &detail);
            line.push('}');
            println!("{line}");
            let _ = std::io::stdout().flush();
            10
        }
    }
}

// ---------------------------------------------------------------------------
// Supervisor side
// ---------------------------------------------------------------------------

enum ShardRun {
    /// Worker finished every remaining trial.
    Done,
    /// Worker died or lost its lease (signal, abort, truncated stream,
    /// watchdog, lease expiry, connection loss). `handshaken` records
    /// whether the worker ever answered the lease: a death before the
    /// handshake is the channel failing, not the trial.
    Died { progress: bool, handshaken: bool, detail: String },
    /// Non-retryable worker failure.
    Fatal(SupervisorError),
    /// First line was not a valid handshake for this campaign.
    Mismatch(String),
    /// The worker sent a record conflicting with committed state — a trust
    /// failure charged to the endpoint (`quarantined` reports whether it
    /// crossed the ledger's budget), not a campaign-fatal protocol error.
    Hostile { quarantined: bool, detail: String },
    /// An audit divergence pushed the endpoint past the trust ledger's
    /// failure budget; it is quarantined for the rest of the campaign.
    Quarantined { detail: String },
}

/// What the pre-commit audit concluded about one record.
enum AuditOutcome {
    /// Not in the audit sample (or auditing is off).
    Skipped,
    /// Re-executed locally; bit-identical.
    Passed,
    /// Re-executed locally; the records disagree. The local record is
    /// committed in the remote one's place.
    Diverged,
}

/// Why a handler stopped driving a shard.
enum ShardEnd {
    /// The shard is fully committed (or its stragglers poisoned).
    Finished,
    /// The campaign is stopping (fatal error, degradation, shutdown).
    Stop,
    /// The remote endpoint stayed unreachable through the retry budget; the
    /// (partially completed) shard should be re-offered to other handlers.
    EndpointDead { detail: String },
}

struct SupCtx<'a> {
    cfg: &'a CampaignConfig,
    runner: &'a RunnerConfig,
    sup: &'a SupervisorConfig,
    workload_name: &'a str,
    fingerprint: u64,
    sampler: Option<&'a SiteSampler>,
    shared: &'a Shared,
    prior_poison: usize,
    /// Local re-executor for audited records; built once when auditing is
    /// on and trials are pending. Serializes audits across handlers.
    auditor: Option<Mutex<ShardExecutor>>,
    /// Per-endpoint trust state plus the campaign-wide audit counters.
    ledger: TrustLedger,
    queue: LeaseQueue,
    poison: Mutex<Vec<PoisonEntry>>,
    fatal: Mutex<Option<SupervisorError>>,
    degrade: AtomicBool,
    stop: AtomicBool,
    live_children: AtomicUsize,
    handlers: usize,
    retired: AtomicUsize,
}

impl SupCtx<'_> {
    fn should_stop(&self) -> bool {
        // A tripped cancel token stops new leases exactly like an internal
        // stop: handlers drain what is in flight and retire. It also
        // suppresses the AllEndpointsLost backstop — pending trials after a
        // cancellation are deliberate, not stranded.
        self.stop.load(Ordering::SeqCst)
            || self.degrade.load(Ordering::SeqCst)
            || self.runner.cancel.cancelled().is_some()
    }

    fn raise_fatal(&self, e: SupervisorError) {
        self.fatal.lock().expect("fatal lock").get_or_insert(e);
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Degrade is only safe while nothing has happened yet: no completed
    /// trial, no new poison. Returns whether degradation was initiated.
    fn try_degrade(&self) -> bool {
        let untouched = self.shared.completed.load(Ordering::SeqCst) == 0
            && self.poison.lock().expect("poison lock").is_empty();
        if untouched {
            self.degrade.store(true, Ordering::SeqCst);
        }
        untouched
    }

    fn backoff(&self, handler: usize, consecutive_failures: u32) -> Duration {
        jittered_backoff(
            self.sup.backoff_base,
            self.sup.backoff_cap,
            self.cfg.seed,
            handler,
            consecutive_failures,
        )
    }

    /// Build handler `id`'s channel to its worker.
    fn make_transport(&self, id: usize) -> Box<dyn Transport> {
        match &self.sup.transport {
            TransportKind::Pipe => Box::new(PipeTransport::new(
                self.sup.worker_cmd.clone(),
                self.sup.worker_env.clone(),
                campaign_flags(self.workload_name, self.cfg),
                self.sup.shard_timeout,
            )),
            TransportKind::Tcp { endpoints } => Box::new(TcpTransport::new(
                endpoints[id % endpoints.len()].clone(),
                self.sup.lease_timeout,
                render_hello(self.workload_name, self.cfg, self.sup.lease_timeout),
            )),
        }
    }

    /// Stream one lease's messages, committing records as they arrive.
    /// Committed trials are removed from `remaining`, so a retry re-leases
    /// only what is still missing — and the head of `remaining` is always
    /// the trial the last death is attributable to.
    fn stream_shard(
        &self,
        transport: &mut dyn Transport,
        remaining: &mut VecDeque<u64>,
    ) -> ShardRun {
        let mut lease = Lease::new(transport.policy());
        let mut progress = false;
        let mut handshaken = false;
        let mut drain_sent = false;
        // Progress gate for TCP heartbeats: renew only when the daemon's
        // completion count *changes*, so a frozen executor with a beating
        // heart still loses its lease.
        let mut last_hb: Option<u64> = None;
        loop {
            if self.stop.load(Ordering::SeqCst) || self.degrade.load(Ordering::SeqCst) {
                transport.revoke();
                return ShardRun::Died {
                    progress,
                    handshaken,
                    detail: "supervisor shutdown".into(),
                };
            }
            if let Some(reason) = self.runner.cancel.cancelled() {
                if transport.is_remote() && handshaken {
                    // Graceful preemption of a live daemon: ask it to finish
                    // the trial in flight and part cleanly, then keep
                    // streaming (and committing) until its `drained` ack.
                    // A daemon that never acks still loses its lease on the
                    // ordinary expiry path below — drain adds no new way to
                    // hang the supervisor.
                    if !drain_sent {
                        if let Err(detail) = transport.drain() {
                            transport.revoke();
                            return ShardRun::Died {
                                progress,
                                handshaken,
                                detail: format!("cancelled ({reason}); drain failed: {detail}"),
                            };
                        }
                        drain_sent = true;
                    }
                } else {
                    // Subprocess workers (and daemons that have not yet
                    // handshaken) hold no unflushed committed work: revoke.
                    transport.revoke();
                    return ShardRun::Died {
                        progress,
                        handshaken,
                        detail: format!("cancelled ({reason})"),
                    };
                }
            }
            match transport.recv(lease.poll_wait()) {
                ChannelEvent::Msg(line) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    if !handshaken {
                        let parsed = json::parse(&line).ok();
                        // An error can precede the handshake: the daemon
                        // rejected our hello, or the worker rejected its
                        // flags. A fatal configuration error either way.
                        if let Some(detail) =
                            parsed.as_ref().and_then(|v| v.get("error")).and_then(Value::as_str)
                        {
                            let detail = detail.to_string();
                            transport.revoke();
                            return ShardRun::Fatal(SupervisorError::WorkerFatal { detail });
                        }
                        let ok = parsed.is_some_and(|v| {
                            v.get("mbavf_worker").and_then(Value::as_u64) == Some(PROTOCOL_VERSION)
                                && v.get("fingerprint").and_then(Value::as_u64)
                                    == Some(self.fingerprint)
                        });
                        if !ok {
                            transport.revoke();
                            let head: String = line.chars().take(120).collect();
                            return ShardRun::Mismatch(format!(
                                "expected worker handshake, got {head:?}"
                            ));
                        }
                        handshaken = true;
                        lease.renew();
                        continue;
                    }
                    let Ok(v) = json::parse(&line) else {
                        // A torn line: the worker died mid-write. The EOF
                        // that follows drives the retry; nothing to commit.
                        continue;
                    };
                    if let Some(n) = v.get("hb").and_then(Value::as_u64) {
                        if last_hb != Some(n) {
                            last_hb = Some(n);
                            lease.renew();
                        }
                        continue;
                    }
                    if v.get("drained").is_some() {
                        // The daemon honored our drain frame: its in-flight
                        // trial is committed (we streamed it above), its
                        // lease is flushed back, and it parted cleanly. The
                        // shard's leftovers stay pending for the resume.
                        transport.finish();
                        return ShardRun::Died {
                            progress,
                            handshaken,
                            detail: "endpoint drained after cancellation".into(),
                        };
                    }
                    if let Some(detail) = v.get("error").and_then(Value::as_str) {
                        let detail = detail.to_string();
                        transport.revoke();
                        return ShardRun::Fatal(SupervisorError::WorkerFatal { detail });
                    }
                    if v.get("done").is_some() {
                        transport.finish();
                        return if remaining.is_empty() {
                            ShardRun::Done
                        } else {
                            ShardRun::Fatal(SupervisorError::Protocol {
                                detail: format!(
                                    "worker reported done with {} trials unaccounted for",
                                    remaining.len()
                                ),
                            })
                        };
                    }
                    let (record, us) = match parse_record_line(&v) {
                        Ok(r) => r,
                        Err(detail) => {
                            transport.revoke();
                            return ShardRun::Fatal(SupervisorError::Protocol {
                                detail: format!("bad record line: {detail}"),
                            });
                        }
                    };
                    let trial = record.trial;
                    let leased = remaining.iter().position(|&t| t == trial);
                    // Trust-but-verify: re-execute sampled records through
                    // the local arena path *before* they reach the WAL. The
                    // sample is a pure function of (seed, trial), so it is
                    // invariant under the worker count and endpoint layout;
                    // only leased (first-delivery) records are audited, so
                    // each selected trial is audited exactly once. On
                    // divergence the local re-execution wins the tie: the
                    // local record is committed, the remote one discarded.
                    let (mut record, mut us) = (record, us);
                    let mut audit = AuditOutcome::Skipped;
                    if leased.is_some() {
                        if let (Some(policy), Some(auditor)) = (self.sup.audit, &self.auditor) {
                            if policy.selects(self.cfg.seed, trial) {
                                let (local, local_us) =
                                    auditor.lock().expect("auditor lock").run_trial(trial);
                                if local == record {
                                    audit = AuditOutcome::Passed;
                                } else {
                                    audit = AuditOutcome::Diverged;
                                    record = local;
                                    us = local_us;
                                }
                            }
                        }
                    }
                    match self.shared.commit_remote(record, us, leased.is_some()) {
                        RemoteCommit::Fresh(done) => {
                            let pos = leased.expect("fresh commits are leased");
                            remaining.remove(pos);
                            progress = true;
                            lease.renew();
                            if let Some(path) = &self.runner.checkpoint {
                                if done.is_multiple_of(self.runner.checkpoint_every) {
                                    self.shared.snapshot(
                                        self.workload_name,
                                        self.fingerprint,
                                        self.cfg.mode_bits,
                                        path,
                                    );
                                }
                            }
                            crate::signals::preempt_drill(done);
                            match audit {
                                AuditOutcome::Skipped => {}
                                AuditOutcome::Passed => self.ledger.record_pass(),
                                AuditOutcome::Diverged => {
                                    let endpoint = transport.endpoint();
                                    eprintln!(
                                        "warning: audit divergence on trial {trial}: endpoint {endpoint} disagrees with local re-execution; the local record was committed"
                                    );
                                    if self.ledger.record_divergence(&endpoint) {
                                        transport.revoke();
                                        return ShardRun::Quarantined {
                                            detail: format!(
                                                "quarantined by the trust ledger after an audit divergence on trial {trial}"
                                            ),
                                        };
                                    }
                                }
                            }
                        }
                        RemoteCommit::Duplicate => {
                            // A replay of a record committed by an earlier
                            // lease (reconnect, duplicated frames): dropped
                            // by the merge, never recounted.
                            if let Some(pos) = leased {
                                remaining.remove(pos);
                                progress = true;
                            }
                            lease.renew();
                        }
                        RemoteCommit::Conflict { detail } => {
                            // A record contradicting committed state is a
                            // trust failure, charged to the endpoint's
                            // retry budget and trust ledger — not silently
                            // formatted into a fatal error.
                            let quarantined = self.ledger.record_conflict(&transport.endpoint());
                            transport.revoke();
                            return ShardRun::Hostile { quarantined, detail };
                        }
                        RemoteCommit::Foreign => {
                            transport.revoke();
                            return ShardRun::Fatal(SupervisorError::Protocol {
                                detail: format!("worker emitted trial {trial} outside its shard"),
                            });
                        }
                    }
                }
                ChannelEvent::Idle => {
                    if lease.expired() {
                        let detail = lease.describe(remaining.len());
                        transport.revoke();
                        return ShardRun::Died { progress, handshaken, detail };
                    }
                }
                ChannelEvent::Eof { status } => {
                    // A worker that drained its shard but lost the sentinel
                    // did all the work; don't retry an empty shard.
                    return if remaining.is_empty() {
                        transport.finish();
                        ShardRun::Done
                    } else {
                        ShardRun::Died {
                            progress,
                            handshaken,
                            detail: format!(
                                "worker died ({status}) with {} trials left",
                                remaining.len()
                            ),
                        }
                    };
                }
            }
        }
    }

    /// Drive one shard to completion: lease/re-lease with jittered backoff,
    /// poison the head trial after repeated no-progress failure, declare
    /// the endpoint dead when it stays unreachable.
    fn run_shard(
        &self,
        transport: &mut dyn Transport,
        handler: usize,
        shard: &mut Shard,
    ) -> ShardEnd {
        let mut lease_fails: u32 = 0;
        while !shard.remaining.is_empty() {
            if self.should_stop() {
                return ShardEnd::Stop;
            }
            // A quarantined endpoint never leases again this campaign; its
            // shard goes back to the queue for surviving endpoints.
            if transport.is_remote() && self.ledger.is_quarantined(&transport.endpoint()) {
                return ShardEnd::EndpointDead {
                    detail: "endpoint is quarantined by the trust ledger".into(),
                };
            }
            if shard.attempts > self.sup.max_retries {
                let trial = shard.remaining.pop_front().expect("remaining is non-empty");
                let sampler = self.sampler.expect("pending trials imply a sampler");
                let (attempts, last_fail) = (shard.attempts, shard.last_fail.clone());
                let entry = PoisonEntry {
                    trial,
                    site: sampler.sample(self.cfg.seed, trial),
                    reason: last_fail.clone(),
                    attempts,
                };
                eprintln!(
                    "warning: poisoning trial {trial} after {attempts} failed worker attempts ({last_fail})"
                );
                let total = {
                    let mut poison = self.poison.lock().expect("poison lock");
                    poison.push(entry);
                    self.prior_poison + poison.len()
                };
                if total > self.sup.max_poison {
                    self.raise_fatal(SupervisorError::TooManyPoisoned {
                        poisoned: total,
                        cap: self.sup.max_poison,
                    });
                    return ShardEnd::Stop;
                }
                shard.attempts = 0;
                shard.last_fail = String::from("never ran");
                continue;
            }
            let failures = shard.attempts.max(lease_fails);
            if failures > 0 {
                std::thread::sleep(self.backoff(handler, failures));
            }
            let trials: Vec<u64> = shard.remaining.iter().copied().collect();
            if let Err(detail) = transport.lease(&trials, shard.attempts + lease_fails) {
                if !transport.is_remote() && self.try_degrade() {
                    return ShardEnd::Stop;
                }
                lease_fails += 1;
                if lease_fails > self.sup.max_retries {
                    if transport.is_remote() {
                        return ShardEnd::EndpointDead { detail };
                    }
                    self.raise_fatal(SupervisorError::Spawn { detail });
                    return ShardEnd::Stop;
                }
                continue;
            }
            self.live_children.fetch_add(1, Ordering::SeqCst);
            let run = self.stream_shard(transport, &mut shard.remaining);
            self.live_children.fetch_sub(1, Ordering::SeqCst);
            match run {
                ShardRun::Done => return ShardEnd::Finished,
                ShardRun::Died { progress, handshaken, detail } => {
                    if !handshaken && transport.is_remote() {
                        // The connection died before the daemon answered the
                        // lease — e.g. a dial that landed in a dying
                        // listener's backlog. The trial never ran, so charge
                        // the endpoint's retry budget, not the trial's.
                        lease_fails += 1;
                        if lease_fails > self.sup.max_retries {
                            return ShardEnd::EndpointDead { detail };
                        }
                        continue;
                    }
                    lease_fails = 0;
                    shard.attempts = if progress { 1 } else { shard.attempts + 1 };
                    shard.last_fail = detail;
                }
                ShardRun::Fatal(e) => {
                    self.raise_fatal(e);
                    return ShardEnd::Stop;
                }
                ShardRun::Hostile { quarantined, detail } => {
                    if !transport.is_remote() {
                        // A local subprocess contradicting committed state
                        // is a determinism bug, not a trust problem — fail
                        // loudly, exactly as before auditing existed.
                        self.raise_fatal(SupervisorError::Protocol { detail });
                        return ShardEnd::Stop;
                    }
                    // Charged like a pre-handshake death: the endpoint's
                    // budget, not the head trial's.
                    lease_fails += 1;
                    if quarantined || lease_fails > self.sup.max_retries {
                        return ShardEnd::EndpointDead { detail };
                    }
                }
                ShardRun::Quarantined { detail } => {
                    if transport.is_remote() {
                        return ShardEnd::EndpointDead { detail };
                    }
                    // A local worker diverging from local re-execution is
                    // nondeterminism in this very process — campaign-fatal.
                    self.raise_fatal(SupervisorError::Protocol { detail });
                    return ShardEnd::Stop;
                }
                ShardRun::Mismatch(detail) => {
                    if self.try_degrade() {
                        if transport.is_remote() {
                            eprintln!(
                                "warning: worker endpoint {} is not serving this campaign ({detail})",
                                transport.endpoint()
                            );
                        } else {
                            eprintln!(
                                "warning: worker handshake failed ({detail}); is this binary missing the __worker dispatch?"
                            );
                        }
                        return ShardEnd::Stop;
                    }
                    self.raise_fatal(SupervisorError::Protocol { detail });
                    return ShardEnd::Stop;
                }
            }
        }
        ShardEnd::Finished
    }

    /// Handler `id`'s main loop: lease shards off the queue until it is
    /// drained or the campaign stops. A dead endpoint hands its shard back
    /// for the surviving handlers and retires.
    fn drive(&self, id: usize) {
        let mut transport = self.make_transport(id);
        loop {
            if self.should_stop() {
                return;
            }
            match self.queue.take() {
                Some(mut shard) => match self.run_shard(transport.as_mut(), id, &mut shard) {
                    ShardEnd::Finished => {}
                    ShardEnd::Stop => return,
                    ShardEnd::EndpointDead { detail } => {
                        eprintln!(
                            "warning: worker endpoint {} lost ({detail}); re-offering its shard",
                            transport.endpoint()
                        );
                        self.queue.give_back(shard);
                        return;
                    }
                },
                None => {
                    // Another handler may yet give its shard back if its
                    // endpoint dies mid-stream; stay alive while anyone is
                    // still streaming.
                    if self.live_children.load(Ordering::SeqCst) > 0 {
                        std::thread::sleep(Duration::from_millis(25));
                        continue;
                    }
                    return;
                }
            }
        }
    }

    fn handler(&self, id: usize) {
        let _slot = WorkerGuard::retire_on_drop(self.shared);
        self.drive(id);
        // Backstop: the last handler out must not strand re-offered shards.
        // With work still queued and no stop in flight, every endpoint died
        // after work was committed — degrade if still possible, else fail
        // loudly rather than report a silent partial campaign.
        if self.retired.fetch_add(1, Ordering::SeqCst) + 1 == self.handlers {
            let pending = self.queue.outstanding();
            if pending > 0
                && !self.should_stop()
                && self.fatal.lock().expect("fatal lock").is_none()
                && !self.try_degrade()
            {
                self.raise_fatal(TransportError::AllEndpointsLost { pending }.into());
            }
        }
    }
}

/// Run (or resume) a campaign with worker subprocesses or remote worker
/// daemons.
///
/// Identical record semantics to [`crate::runner::run_campaign`] — the same
/// checkpoint format, the same fingerprint, bit-identical non-poison
/// records at any worker count over any transport — plus the failure policy
/// described at the module level. Trials that repeatedly kill their worker
/// are poisoned rather than failing the campaign; if no worker ever
/// produces a record the supervisor degrades one isolation level (TCP →
/// process → thread) with a warning.
///
/// # Errors
///
/// Everything [`crate::runner::run_campaign`] can raise, plus
/// [`InjectError::Supervisor`] for a fatal worker error (exit 10 or an
/// `error` frame), a protocol violation after trials have completed, a
/// poison sidecar from a different campaign, more than
/// [`SupervisorConfig::max_poison`] poisoned trials, a TCP transport with
/// no endpoints ([`TransportError::NoEndpoints`]), or every endpoint lost
/// after work was committed ([`TransportError::AllEndpointsLost`]).
pub fn run_supervised(
    workload: &Workload,
    cfg: &CampaignConfig,
    runner: &RunnerConfig,
    sup: &SupervisorConfig,
) -> Result<CampaignReport, InjectError> {
    if runner.checkpoint.is_some() && runner.checkpoint_every == 0 {
        return Err(InjectError::BadConfig {
            detail: "checkpoint_every must be at least 1 when checkpointing".into(),
        });
    }
    if sup.shard_size == 0 {
        return Err(InjectError::BadConfig { detail: "shard_size must be at least 1".into() });
    }
    if let TransportKind::Tcp { endpoints } = &sup.transport {
        if endpoints.is_empty() {
            return Err(SupervisorError::from(TransportError::NoEndpoints).into());
        }
    }

    let golden = golden_shape(workload, cfg).map_err(|detail| InjectError::GoldenRunFailed {
        workload: workload.name.to_string(),
        detail,
    })?;
    let sampler = if cfg.injections == 0 {
        None
    } else {
        Some(SiteSampler::new(&golden.per_wg_retired, golden.num_vregs).map_err(|e| match e {
            InjectError::EmptySampleSpace { detail } => {
                InjectError::EmptySampleSpace { detail: format!("{}: {detail}", workload.name) }
            }
            other => other,
        })?)
    };
    let fingerprint = checkpoint::config_fingerprint(workload.name, cfg);

    let durable =
        restore_durable(runner, workload.name, fingerprint, cfg.mode_bits, cfg.injections)?;
    let (slots, resumed) = (durable.slots, durable.resumed);
    let poison_path = sup
        .poison_path
        .clone()
        .or_else(|| runner.checkpoint.as_ref().map(|p| default_poison_path(p)));
    let prior_poison = match &poison_path {
        Some(p) => load_or_quarantine_poison(p, fingerprint).map_err(InjectError::from)?,
        None => Vec::new(),
    };

    // Work list: not restored, not previously poisoned, cut to the
    // graceful-stop budget — same ordering contract as thread mode.
    let mut pending: Vec<u64> = (0..cfg.injections as u64)
        .filter(|&t| slots[t as usize].is_none() && !prior_poison.iter().any(|e| e.trial == t))
        .collect();
    let total_missing = pending.len();
    if let Some(cap) = runner.cancel.trial_budget() {
        pending.truncate(cap);
    }

    // Contiguous shards with boundaries fixed by trial index, so the shard
    // layout is invariant under the worker count.
    let mut shards: VecDeque<Shard> = VecDeque::new();
    for &t in &pending {
        let shard_id = t / sup.shard_size as u64;
        match shards.back_mut() {
            Some(last)
                if last
                    .remaining
                    .back()
                    .is_some_and(|&p| p / sup.shard_size as u64 == shard_id) =>
            {
                last.remaining.push_back(t)
            }
            _ => shards.push_back(Shard::new(VecDeque::from([t]))),
        }
    }
    let workers = match &sup.transport {
        TransportKind::Tcp { endpoints } => endpoints.len(),
        TransportKind::Pipe => {
            if sup.workers == 0 {
                std::thread::available_parallelism().map(usize::from).unwrap_or(1)
            } else {
                sup.workers
            }
        }
    }
    .clamp(1, shards.len().max(1));
    let label = match &sup.transport {
        TransportKind::Pipe => "process",
        TransportKind::Tcp { .. } => "tcp",
    };

    // The audit re-executor walks the same arena path the workers do:
    // golden run, sampler, and arena built once, reused for every audited
    // trial. Built only when something can actually be audited.
    let auditor = if sup.audit.is_some() && !pending.is_empty() {
        Some(Mutex::new(ShardExecutor::new(workload, *cfg).map_err(|detail| {
            InjectError::GoldenRunFailed { workload: workload.name.to_string(), detail }
        })?))
    } else {
        None
    };

    let shared = Shared::new(slots, pending.len());
    shared.adopt_durable(durable.journal, durable.snapshot_failures);
    shared.active_workers.store(workers, Ordering::SeqCst);
    let ctx = SupCtx {
        cfg,
        runner,
        sup,
        workload_name: workload.name,
        fingerprint,
        sampler: sampler.as_ref(),
        shared: &shared,
        prior_poison: prior_poison.len(),
        auditor,
        ledger: TrustLedger::new(sup.audit.map_or(0, |a| a.max_failures())),
        queue: LeaseQueue::new(shards),
        poison: Mutex::new(Vec::new()),
        fatal: Mutex::new(None),
        degrade: AtomicBool::new(false),
        stop: AtomicBool::new(false),
        live_children: AtomicUsize::new(0),
        handlers: workers,
        retired: AtomicUsize::new(0),
    };

    std::thread::scope(|scope| {
        if let Some(interval) = runner.heartbeat {
            if !pending.is_empty() {
                let ctx = &ctx;
                scope.spawn(move || {
                    ctx.shared.monitor(
                        interval,
                        resumed,
                        cfg.injections,
                        label,
                        &|| ctx.live_children.load(Ordering::SeqCst),
                        &|| {
                            let mut extra = String::new();
                            if let Some(reason) = ctx.runner.cancel.cancelled() {
                                let _ = write!(extra, ", draining ({reason})");
                            }
                            let n =
                                ctx.prior_poison + ctx.poison.lock().expect("poison lock").len();
                            if n > 0 {
                                let _ = write!(extra, ", poisoned {n}");
                            }
                            let audited = ctx.ledger.audited();
                            if audited > 0 {
                                let _ = write!(
                                    extra,
                                    ", audited {audited} ({} divergent)",
                                    ctx.ledger.divergences()
                                );
                            }
                            let q = ctx.ledger.quarantined_count();
                            if q > 0 {
                                let _ = write!(extra, ", quarantined {q}");
                            }
                            extra
                        },
                    );
                });
            }
        }
        for id in 0..workers {
            let ctx = &ctx;
            scope.spawn(move || ctx.handler(id));
        }
    });

    if ctx.degrade.load(Ordering::SeqCst) {
        return match &sup.transport {
            TransportKind::Tcp { .. } => {
                eprintln!(
                    "warning: no tcp worker produced a record; degrading to local process isolation for this campaign"
                );
                let local = SupervisorConfig { transport: TransportKind::Pipe, ..sup.clone() };
                run_supervised(workload, cfg, runner, &local)
            }
            TransportKind::Pipe => {
                eprintln!(
                    "warning: process isolation unavailable; degrading to thread isolation for this campaign"
                );
                run_campaign_with(workload, cfg, runner, &golden)
            }
        };
    }

    let mut new_poison = ctx.poison.into_inner().expect("poison lock");
    new_poison.sort_by_key(|e| e.trial);
    let newly_poisoned = new_poison.len();
    let mut all_poison = prior_poison;
    all_poison.extend(new_poison);
    all_poison.sort_by_key(|e| e.trial);

    // Persist what we have — records and poisons — even on a fatal error,
    // so the evidence survives for the resume that follows the fix.
    let records: Vec<SingleBitRecord> = {
        let slots = shared.slots.lock().expect("slots lock");
        slots.iter().flatten().cloned().collect()
    };
    let snapshot_failures = shared.snapshot_failures.load(Ordering::SeqCst) as u64;
    if let Some(path) = &runner.checkpoint {
        final_save(path, workload.name, fingerprint, cfg.mode_bits, &records, snapshot_failures)?;
    }
    if let Some(path) = &poison_path {
        if !all_poison.is_empty() {
            save_poison(path, workload.name, fingerprint, &all_poison)
                .map_err(InjectError::from)?;
        }
    }

    if let Some(e) = ctx.fatal.into_inner().expect("fatal lock") {
        return Err(e.into());
    }

    let mut bundles = Vec::new();
    if let Some(dir) = &runner.repro_dir {
        let writer = crate::bundle::BundleWriter {
            dir,
            workload: workload.name,
            cfg,
            fingerprint,
            golden_digest: mbavf_core::rng::fnv1a(&golden.output),
            cap: runner.repro_cap,
        };
        bundles = writer.write(&records, &|r| r.outcome.is_error())?;
        // Poisoned trials get repro bundles too: the whole point of the
        // quarantine is that someone replays them later, in isolation.
        let poison_records: Vec<SingleBitRecord> = all_poison
            .iter()
            .map(|e| SingleBitRecord {
                trial: e.trial,
                site: e.site,
                outcome: Outcome::Crash { reason: format!("poison: {}", e.reason) },
                read_before_overwrite: false,
            })
            .collect();
        bundles.extend(writer.write(&poison_records, &|_| true)?);
    }

    let newly_run = shared.completed.load(Ordering::SeqCst);
    let complete = newly_run + newly_poisoned == total_missing;
    let trial_latency = LatencyStats::from_micros(std::mem::take(
        &mut *shared.latencies_us.lock().expect("latency lock"),
    ));
    Ok(CampaignReport {
        summary: CampaignSummary {
            workload: workload.name,
            records,
            snapshot_failures,
            audited: ctx.ledger.audited(),
            audit_divergences: ctx.ledger.divergences(),
            merge_conflicts: ctx.ledger.conflicts(),
            quarantined_endpoints: ctx.ledger.quarantined(),
        },
        resumed,
        newly_run,
        complete,
        interrupted: (!complete)
            .then(|| runner.cancel.cancelled().unwrap_or(crate::cancel::CancelReason::TrialBudget)),
        bundles,
        poisoned: all_poison,
        trial_latency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_campaign;

    fn cfg(n: usize) -> CampaignConfig {
        CampaignConfig { seed: 0x5EED, injections: n, ..CampaignConfig::default() }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mbavf-supervisor-{tag}"));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sh(script: &str) -> Option<Vec<String>> {
        Some(vec!["sh".into(), "-c".into(), script.into()])
    }

    #[test]
    fn rangelist_roundtrips() {
        for trials in [
            vec![0u64],
            vec![0, 1, 2, 3],
            vec![0, 1, 2, 5, 9, 10, 11, 40],
            vec![7],
            (100..200).collect(),
        ] {
            let s = format_trials(&trials);
            assert_eq!(parse_trials(&s).unwrap(), trials, "via {s:?}");
        }
        assert_eq!(format_trials(&[0, 1, 2, 5, 9, 10, 11]), "0-2,5,9-11");
        assert!(parse_trials("").is_err());
        assert!(parse_trials("3-1").is_err());
        assert!(parse_trials("a-b").is_err());
    }

    #[test]
    fn poison_sidecar_roundtrips_and_quarantines() {
        let dir = tmpdir("sidecar");
        let path = dir.join("c.json.poison.json");
        let entries = vec![
            PoisonEntry {
                trial: 3,
                site: FaultSite { wg: 1, after_retired: 17, reg: 3, lane: 9, bit: 30 },
                reason: "worker died (signal: 6) with 2 trials left".into(),
                attempts: 3,
            },
            PoisonEntry {
                trial: 9,
                site: FaultSite { wg: 0, after_retired: 0, reg: 0, lane: 0, bit: 0 },
                reason: "shard watchdog fired after 100ms with 1 trials outstanding".into(),
                attempts: 1,
            },
        ];
        save_poison(&path, "transpose", 0xABCD, &entries).unwrap();
        let loaded = load_poison(&path).unwrap();
        assert_eq!(loaded.workload, "transpose");
        assert_eq!(loaded.config_hash, 0xABCD);
        assert_eq!(loaded.entries, entries);
        assert_eq!(load_or_quarantine_poison(&path, 0xABCD).unwrap(), entries);

        // Wrong campaign: hard error, not quarantine.
        assert!(matches!(
            load_or_quarantine_poison(&path, 0xBEEF),
            Err(SupervisorError::SidecarMismatch { expected: 0xBEEF, found: 0xABCD })
        ));

        // Corruption: quarantined aside, treated as absent.
        std::fs::write(&path, "{ not json").unwrap();
        assert_eq!(load_or_quarantine_poison(&path, 0xABCD).unwrap(), Vec::new());
        assert!(!path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn record_line_roundtrips() {
        let records = [
            SingleBitRecord {
                trial: 7,
                site: FaultSite { wg: 2, after_retired: 99, reg: 11, lane: 63, bit: 31 },
                outcome: Outcome::Crash { reason: "boom \"quoted\"\n".into() },
                read_before_overwrite: true,
            },
            SingleBitRecord {
                trial: 0,
                site: FaultSite { wg: 0, after_retired: 0, reg: 0, lane: 0, bit: 0 },
                outcome: Outcome::Masked,
                read_before_overwrite: false,
            },
        ];
        for r in records {
            let line = render_record_line(&r, 1234);
            let v = json::parse(&line).unwrap();
            assert_eq!(parse_record_line(&v).unwrap(), (r, 1234));
        }
    }

    #[test]
    fn respawn_backoff_is_jittered_deterministic_and_bounded() {
        let base = Duration::from_millis(50);
        let cap = Duration::from_secs(2);
        let d0 = jittered_backoff(base, cap, 0x5EED, 0, 1);
        assert_eq!(d0, jittered_backoff(base, cap, 0x5EED, 0, 1), "jitter must be deterministic");
        let distinct: std::collections::HashSet<Duration> =
            (0..8).map(|h| jittered_backoff(base, cap, 0x5EED, h, 1)).collect();
        assert!(distinct.len() > 1, "handlers must not retry in lockstep");
        for handler in 0..8 {
            for failures in 1..=20u32 {
                let full = base.saturating_mul(1u32 << failures.saturating_sub(1).min(16)).min(cap);
                let d = jittered_backoff(base, cap, 0x5EED, handler, failures);
                assert!(
                    d <= full && d >= full / 2,
                    "handler {handler} failure {failures}: {d:?} outside [{:?}, {full:?}]",
                    full / 2
                );
                assert!(d <= cap);
            }
        }
    }

    #[test]
    fn spawn_failure_degrades_to_thread_mode() {
        let w = by_name("transpose").expect("registered");
        let cfg = cfg(8);
        let sup = SupervisorConfig {
            workers: 1,
            worker_cmd: Some(vec!["/nonexistent/mbavf-worker".into()]),
            ..SupervisorConfig::default()
        };
        let report = run_supervised(&w, &cfg, &RunnerConfig::serial(), &sup).unwrap();
        let thread = run_campaign(&w, &cfg, &RunnerConfig::serial()).unwrap();
        assert_eq!(report.summary, thread.summary);
        assert!(report.complete);
        assert!(report.poisoned.is_empty());
    }

    #[test]
    fn handshake_garbage_degrades_to_thread_mode() {
        let w = by_name("transpose").expect("registered");
        let cfg = cfg(6);
        let sup = SupervisorConfig {
            workers: 1,
            worker_cmd: sh("echo 'running 4 tests'"),
            ..SupervisorConfig::default()
        };
        let report = run_supervised(&w, &cfg, &RunnerConfig::serial(), &sup).unwrap();
        let thread = run_campaign(&w, &cfg, &RunnerConfig::serial()).unwrap();
        assert_eq!(report.summary, thread.summary);
        assert!(report.poisoned.is_empty());
    }

    #[test]
    fn tcp_with_no_endpoints_is_rejected() {
        let w = by_name("transpose").expect("registered");
        let cfg = cfg(4);
        let sup = SupervisorConfig {
            transport: TransportKind::Tcp { endpoints: Vec::new() },
            ..SupervisorConfig::default()
        };
        let err = run_supervised(&w, &cfg, &RunnerConfig::serial(), &sup).unwrap_err();
        assert!(
            matches!(
                err,
                InjectError::Supervisor(SupervisorError::Transport(TransportError::NoEndpoints))
            ),
            "{err}"
        );
    }

    #[test]
    fn watchdog_poisons_silent_workers() {
        // A worker that hangs without ever speaking: every trial is
        // eventually poisoned, the campaign still completes, honestly
        // reporting zero measured trials.
        let w = by_name("transpose").expect("registered");
        let cfg = cfg(2);
        let sup = SupervisorConfig {
            workers: 1,
            shard_timeout: Duration::from_millis(200),
            max_retries: 0,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(5),
            max_poison: 8,
            worker_cmd: sh("sleep 5"),
            ..SupervisorConfig::default()
        };
        let report = run_supervised(&w, &cfg, &RunnerConfig::serial(), &sup).unwrap();
        assert!(report.complete);
        assert_eq!(report.newly_run, 0);
        assert_eq!(report.summary.records.len(), 0);
        assert_eq!(report.poisoned.len(), 2);
        assert_eq!(report.poisoned[0].trial, 0);
        assert_eq!(report.poisoned[1].trial, 1);
        assert!(report.poisoned[0].reason.contains("watchdog"), "{}", report.poisoned[0].reason);
    }

    #[test]
    fn poison_cap_aborts_the_campaign() {
        let w = by_name("transpose").expect("registered");
        let cfg = cfg(3);
        let sup = SupervisorConfig {
            workers: 1,
            shard_timeout: Duration::from_millis(150),
            max_retries: 0,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(5),
            max_poison: 1,
            worker_cmd: sh("sleep 5"),
            ..SupervisorConfig::default()
        };
        let err = run_supervised(&w, &cfg, &RunnerConfig::serial(), &sup).unwrap_err();
        assert!(
            matches!(
                err,
                InjectError::Supervisor(SupervisorError::TooManyPoisoned { poisoned: 2, cap: 1 })
            ),
            "{err}"
        );
    }

    #[test]
    fn worker_error_line_is_fatal_not_retried() {
        let w = by_name("transpose").expect("registered");
        let cfg = cfg(4);
        let fp = checkpoint::config_fingerprint(w.name, &cfg);
        let script = format!(
            "echo '{{\"mbavf_worker\": {PROTOCOL_VERSION}, \"fingerprint\": {fp}}}'; \
             echo '{{\"error\": \"unknown workload\"}}'; exit 10"
        );
        let sup =
            SupervisorConfig { workers: 1, worker_cmd: sh(&script), ..SupervisorConfig::default() };
        let err = run_supervised(&w, &cfg, &RunnerConfig::serial(), &sup).unwrap_err();
        match err {
            InjectError::Supervisor(SupervisorError::WorkerFatal { detail }) => {
                assert_eq!(detail, "unknown workload");
            }
            other => panic!("expected WorkerFatal, got {other}"),
        }
    }

    #[test]
    fn pre_handshake_error_line_is_fatal_not_mismatch() {
        // A worker that rejects its flags emits the error line *before* any
        // handshake; the supervisor must surface the configuration error
        // rather than degrade on a handshake mismatch.
        let w = by_name("transpose").expect("registered");
        let cfg = cfg(4);
        let sup = SupervisorConfig {
            workers: 1,
            worker_cmd: sh("echo '{\"error\": \"bad integer for --seed\"}'; exit 10"),
            ..SupervisorConfig::default()
        };
        let err = run_supervised(&w, &cfg, &RunnerConfig::serial(), &sup).unwrap_err();
        match err {
            InjectError::Supervisor(SupervisorError::WorkerFatal { detail }) => {
                assert_eq!(detail, "bad integer for --seed");
            }
            other => panic!("expected WorkerFatal, got {other}"),
        }
    }

    #[test]
    fn worker_cli_flag_parsing_rejects_garbage() {
        let args = |list: &[(&str, &str)]| -> Vec<String> {
            list.iter().flat_map(|(k, v)| [k.to_string(), v.to_string()]).collect()
        };
        let base = args(&[
            ("--workload", "transpose"),
            ("--seed", "1"),
            ("--scale", "test"),
            ("--hang-factor", "8"),
            ("--wrap-oob", "true"),
            ("--mode-bits", "1"),
            ("--trials", "0-3"),
            ("--attempt", "0"),
        ]);
        // A fully valid argv parses up to the golden run (exercised by the
        // torture tests); here, check each way it can be malformed.
        for (flag_name, bad) in [
            ("--scale", "huge"),
            ("--wrap-oob", "yes"),
            ("--trials", "5-1"),
            ("--seed", "not-a-number"),
            ("--workload", "no-such-workload"),
        ] {
            let mut argv = base.clone();
            let i = argv.iter().position(|a| a == flag_name).unwrap();
            argv[i + 1] = bad.to_string();
            assert!(worker_run(&argv).is_err(), "{flag_name}={bad} must be rejected");
        }
        assert!(worker_run(&base[2..]).is_err(), "missing --workload must be rejected");
    }
}
