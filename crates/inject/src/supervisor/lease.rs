//! Shard leases: who owns which trials, and for how long.
//!
//! A shard travels through the [`LeaseQueue`] carrying its own failure
//! history, so retry/poison accounting survives the shard being re-offered
//! to a different worker after its original endpoint dies. While a worker
//! holds a shard, a [`Lease`] tracks the revocation deadline: the local
//! pipe transport keeps the PR-5 watchdog semantics (a fixed whole-shard
//! budget), the TCP transport uses a sliding deadline renewed by progress
//! (records, or heartbeat frames whose completion count advanced).

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One shard of trial indices plus the failure history charged to its head
/// trial. `attempts` and `last_fail` ride along through give-backs so a
/// shard that hops between workers still poisons its head trial after the
/// configured retry budget, no matter which endpoints it visited.
pub(crate) struct Shard {
    /// Trials not yet committed, in trial order.
    pub(crate) remaining: VecDeque<u64>,
    /// Consecutive no-progress worker failures charged to the head trial.
    pub(crate) attempts: u32,
    /// The last worker failure observed (watchdog, exit signal, lease
    /// expiry, connection loss).
    pub(crate) last_fail: String,
}

impl Shard {
    pub(crate) fn new(trials: VecDeque<u64>) -> Self {
        Shard { remaining: trials, attempts: 0, last_fail: String::from("never ran") }
    }
}

/// The supervisor's shared work queue. Handlers lease shards off the front;
/// a handler whose endpoint dies gives its shard back (history intact) for
/// any surviving handler to pick up.
pub(crate) struct LeaseQueue {
    shards: Mutex<VecDeque<Shard>>,
}

impl LeaseQueue {
    pub(crate) fn new(shards: VecDeque<Shard>) -> Self {
        LeaseQueue { shards: Mutex::new(shards) }
    }

    pub(crate) fn take(&self) -> Option<Shard> {
        self.shards.lock().expect("lease queue lock").pop_front()
    }

    pub(crate) fn give_back(&self, shard: Shard) {
        self.shards.lock().expect("lease queue lock").push_back(shard);
    }

    pub(crate) fn outstanding(&self) -> usize {
        self.shards.lock().expect("lease queue lock").len()
    }
}

/// When a leased shard is revoked from an unresponsive worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DeadlinePolicy {
    /// Whole-shard wall-clock budget, set once at lease time (the pipe
    /// transport's watchdog: a subprocess gets `shard_timeout` for the
    /// entire shard, however it spends it).
    Fixed(Duration),
    /// Sliding deadline renewed on progress (the TCP transport's lease: a
    /// worker keeps the shard as long as records keep landing, and loses it
    /// `lease_timeout` after progress stalls — even if its heartbeat is
    /// still beating, so a livelocked executor cannot hold a lease
    /// forever).
    Sliding(Duration),
}

/// Deadline tracking for one leased shard attempt.
pub(crate) struct Lease {
    policy: DeadlinePolicy,
    deadline: Instant,
}

impl Lease {
    pub(crate) fn new(policy: DeadlinePolicy) -> Self {
        let budget = match policy {
            DeadlinePolicy::Fixed(d) | DeadlinePolicy::Sliding(d) => d,
        };
        Lease { policy, deadline: Instant::now() + budget }
    }

    /// Push the deadline out on progress. A no-op for a fixed-budget lease.
    pub(crate) fn renew(&mut self) {
        if let DeadlinePolicy::Sliding(d) = self.policy {
            self.deadline = Instant::now() + d;
        }
    }

    pub(crate) fn expired(&self) -> bool {
        Instant::now() >= self.deadline
    }

    /// How long the stream loop may block waiting for the next message:
    /// until the deadline, capped at 50 ms so shutdown and cancellation are
    /// noticed promptly — a pending drain must never sit behind a long
    /// lease timeout. (Named for what it is: a poll interval, not a wait
    /// for the deadline itself.)
    pub(crate) fn poll_wait(&self) -> Duration {
        self.deadline.saturating_duration_since(Instant::now()).min(Duration::from_millis(50))
    }

    /// The failure message recorded when this lease is revoked.
    pub(crate) fn describe(&self, outstanding: usize) -> String {
        match self.policy {
            DeadlinePolicy::Fixed(d) => {
                format!("shard watchdog fired after {d:?} with {outstanding} trials outstanding")
            }
            DeadlinePolicy::Sliding(d) => {
                format!("shard lease expired after {d:?} with {outstanding} trials outstanding")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_leases_never_renew_sliding_leases_do() {
        let mut fixed = Lease::new(DeadlinePolicy::Fixed(Duration::from_millis(20)));
        let mut sliding = Lease::new(DeadlinePolicy::Sliding(Duration::from_millis(80)));
        let t0 = Instant::now();
        while t0.elapsed() < Duration::from_millis(30) {
            fixed.renew();
            sliding.renew();
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(fixed.expired(), "renew must not extend a fixed watchdog");
        assert!(!sliding.expired(), "renewal must keep a sliding lease alive");
    }

    #[test]
    fn revocation_messages_name_the_policy() {
        let fixed = Lease::new(DeadlinePolicy::Fixed(Duration::from_secs(60)));
        assert_eq!(fixed.describe(3), "shard watchdog fired after 60s with 3 trials outstanding");
        let sliding = Lease::new(DeadlinePolicy::Sliding(Duration::from_secs(30)));
        assert_eq!(sliding.describe(1), "shard lease expired after 30s with 1 trials outstanding");
    }

    #[test]
    fn poll_wait_caps_the_block_interval_at_50ms_under_long_leases() {
        // The stream loop blocks in `recv(lease.poll_wait())` and re-checks
        // stop/cancel between blocks. The cap is what makes a pending
        // shutdown observable within ~50 ms even when the lease itself has
        // a 60-second deadline — without it a drain request would wait out
        // the full lease timeout before anyone looked at the token.
        let lease = Lease::new(DeadlinePolicy::Sliding(Duration::from_secs(60)));
        assert!(lease.poll_wait() <= Duration::from_millis(50), "got {:?}", lease.poll_wait());
        let lease = Lease::new(DeadlinePolicy::Fixed(Duration::from_secs(3600)));
        assert!(lease.poll_wait() <= Duration::from_millis(50), "got {:?}", lease.poll_wait());
    }

    #[test]
    fn poll_wait_shrinks_to_the_deadline_when_it_is_nearer_than_the_cap() {
        // Near expiry the poll interval tightens to the remaining budget
        // (never negative), so expiry itself is also observed on time.
        let lease = Lease::new(DeadlinePolicy::Sliding(Duration::from_millis(10)));
        assert!(lease.poll_wait() <= Duration::from_millis(10));
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(lease.poll_wait(), Duration::ZERO, "expired lease must not block");
        assert!(lease.expired());
    }

    #[test]
    fn queue_give_back_preserves_failure_history() {
        let q = LeaseQueue::new(VecDeque::from([Shard::new(VecDeque::from([0, 1, 2]))]));
        let mut shard = q.take().expect("one shard queued");
        assert_eq!(q.outstanding(), 0);
        shard.attempts = 2;
        shard.last_fail = "connection lost".into();
        shard.remaining.pop_front();
        q.give_back(shard);
        assert_eq!(q.outstanding(), 1);
        let back = q.take().expect("shard re-offered");
        assert_eq!(back.attempts, 2);
        assert_eq!(back.last_fail, "connection lost");
        assert_eq!(back.remaining, VecDeque::from([1, 2]));
    }

    #[test]
    fn multi_shard_give_backs_release_in_fifo_order_with_history_intact() {
        // Three shards, three handlers: when two endpoints die (e.g. both
        // get quarantined by the trust ledger), their shards must be
        // re-offered to the survivor in the order they were given back,
        // each carrying its own distinct failure history — the shards must
        // never swap or merge their retry accounting.
        let q = LeaseQueue::new(VecDeque::from([
            Shard::new(VecDeque::from([0, 1])),
            Shard::new(VecDeque::from([2, 3])),
            Shard::new(VecDeque::from([4, 5])),
        ]));
        let a = q.take().expect("shard a");
        let mut b = q.take().expect("shard b");
        let mut c = q.take().expect("shard c");
        assert_eq!(q.outstanding(), 0, "all three leased out");
        drop(a); // handler A commits its whole shard: nothing to give back

        // Handler C's endpoint dies first, then handler B's, each having
        // made different partial progress with different failure counts.
        c.attempts = 1;
        c.last_fail = "endpoint is quarantined by the trust ledger".into();
        c.remaining.pop_front();
        q.give_back(c);
        b.attempts = 3;
        b.last_fail = "connection lost".into();
        q.give_back(b);
        assert_eq!(q.outstanding(), 2);

        // The survivor re-leases in give-back (FIFO) order: C then B, each
        // with exactly the history its own failures earned.
        let first = q.take().expect("first re-offer");
        assert_eq!(first.remaining, VecDeque::from([5]));
        assert_eq!(first.attempts, 1);
        assert_eq!(first.last_fail, "endpoint is quarantined by the trust ledger");
        let second = q.take().expect("second re-offer");
        assert_eq!(second.remaining, VecDeque::from([2, 3]));
        assert_eq!(second.attempts, 3);
        assert_eq!(second.last_fail, "connection lost");
        assert!(q.take().is_none(), "queue drained");
    }
}
