//! Idempotent record merge keyed by trial index.
//!
//! The networked transport can replay records: a retried shard re-sends
//! everything still missing, a reconnect can deliver frames the supervisor
//! already committed from an earlier lease, and a hostile network can
//! reorder or duplicate anything in flight. The merge makes all of that
//! harmless — a record lands in its trial's slot exactly once, byte-equal
//! duplicates are ignored without recounting, and *conflicting* contents
//! for the same trial are a protocol violation (records are deterministic
//! functions of the campaign config, so two honest workers can never
//! disagree about a trial).
//!
//! Because slot assignment depends only on the trial index, merging any
//! permutation of a record stream with arbitrarily duplicated prefixes
//! yields the same slot vector — and therefore the same checkpoint — as the
//! in-order stream. The `merge_properties` integration test proves this
//! invariant; the TCP transport relies on it.
//!
//! A [`MergeVerdict::Conflict`] is no longer fatal on a remote transport:
//! the supervisor charges it to the offending endpoint's trust ledger (see
//! [`super::audit`]) and retries the shard elsewhere, quarantining the
//! endpoint once it exhausts its failure budget. On the local pipe
//! transport a conflict still aborts the campaign — a subprocess of this
//! very binary disagreeing with itself is a determinism bug, not a trust
//! problem.

use crate::campaign::SingleBitRecord;

/// What happened when a record was offered to the merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeVerdict {
    /// First sighting of this trial: the record was stored and must be
    /// counted by the caller.
    Fresh,
    /// Byte-equal to the record already stored for this trial: dropped,
    /// never recounted.
    Duplicate,
    /// Same trial, different contents — a protocol violation, since trial
    /// records are deterministic.
    Conflict {
        /// Human-readable description of the disagreement.
        detail: String,
    },
    /// The trial cannot be accepted: outside the budget, or emitted by a
    /// worker that was never leased it.
    Foreign {
        /// The offending trial index.
        trial: u64,
    },
}

/// Merge one record into a slot vector. `allow_insert` is false when the
/// sender does not hold a lease covering the trial: then only a byte-equal
/// duplicate of an already-committed record is tolerated (a replay), and
/// anything else is foreign.
pub(crate) fn merge_slot(
    slots: &mut [Option<SingleBitRecord>],
    record: SingleBitRecord,
    allow_insert: bool,
) -> MergeVerdict {
    let trial = record.trial;
    let Some(slot) = slots.get_mut(trial as usize) else {
        return MergeVerdict::Foreign { trial };
    };
    match slot {
        Some(existing) if *existing == record => MergeVerdict::Duplicate,
        Some(_) => MergeVerdict::Conflict {
            detail: format!("worker re-emitted trial {trial} with conflicting contents"),
        },
        None if allow_insert => {
            *slot = Some(record);
            MergeVerdict::Fresh
        }
        None => MergeVerdict::Foreign { trial },
    }
}

/// An order- and duplication-insensitive accumulator of campaign records:
/// offer records in any order, with any duplication, and read back the
/// deterministic in-trial-order result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordMerge {
    slots: Vec<Option<SingleBitRecord>>,
}

impl RecordMerge {
    /// An empty merge over a campaign budget of `budget` trials.
    pub fn new(budget: usize) -> Self {
        RecordMerge { slots: vec![None; budget] }
    }

    /// Offer one record. Only a [`MergeVerdict::Fresh`] verdict changed the
    /// merge's contents.
    pub fn offer(&mut self, record: SingleBitRecord) -> MergeVerdict {
        merge_slot(&mut self.slots, record, true)
    }

    /// Trials merged so far.
    pub fn merged(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// The merged records in trial order — exactly what a checkpoint of the
    /// equivalent in-order stream would contain.
    pub fn records(&self) -> Vec<SingleBitRecord> {
        self.slots.iter().flatten().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{FaultSite, Outcome};

    fn rec(trial: u64, bit: u8) -> SingleBitRecord {
        SingleBitRecord {
            trial,
            site: FaultSite { wg: 0, after_retired: 7, reg: 1, lane: 2, bit },
            outcome: Outcome::Masked,
            read_before_overwrite: false,
        }
    }

    #[test]
    fn duplicates_merge_once_and_conflicts_are_flagged() {
        let mut m = RecordMerge::new(4);
        assert_eq!(m.offer(rec(2, 5)), MergeVerdict::Fresh);
        assert_eq!(m.offer(rec(2, 5)), MergeVerdict::Duplicate);
        assert_eq!(m.merged(), 1);
        assert!(matches!(m.offer(rec(2, 6)), MergeVerdict::Conflict { .. }));
        // The conflicting offer must not clobber the committed record.
        assert_eq!(m.records(), vec![rec(2, 5)]);
        assert_eq!(m.offer(rec(9, 0)), MergeVerdict::Foreign { trial: 9 });
    }

    #[test]
    fn unleased_slots_reject_inserts_but_tolerate_replays() {
        let mut slots = vec![None, Some(rec(1, 3)), None];
        assert_eq!(merge_slot(&mut slots, rec(1, 3), false), MergeVerdict::Duplicate);
        assert_eq!(merge_slot(&mut slots, rec(0, 1), false), MergeVerdict::Foreign { trial: 0 });
        assert_eq!(slots[0], None, "a foreign record must not be stored");
        assert_eq!(merge_slot(&mut slots, rec(0, 1), true), MergeVerdict::Fresh);
    }
}
