//! Trust-but-verify: deterministic record auditing and the endpoint trust
//! ledger.
//!
//! The supervisor's merge already guarantees records cannot be
//! double-counted or reordered, but until now it *trusted their contents*:
//! a worker daemon on defective silicon — a mercurial core — can return a
//! confidently wrong verdict and silently skew the MB-AVF estimate the
//! campaign exists to compute. A harness that measures silent data
//! corruption must not itself be corruptible by it.
//!
//! [`AuditPolicy`] closes that gap. `campaign --audit RATE` selects a
//! deterministic sample of committed-candidate records — the draw is a pure
//! function of `(campaign seed, trial index)`, so the audited set is
//! invariant under the worker count, the endpoint layout, and the resume
//! schedule — and re-executes each selected trial locally through the same
//! arena path the workers use, *before* the remote record reaches the WAL.
//! The two records must be bit-identical. On divergence the local
//! re-execution is authoritative (local tie-break): the local record is
//! committed, the remote one discarded, and the lie is charged to the
//! endpoint.
//!
//! [`TrustLedger`] keeps the per-endpoint score. Audit divergences and
//! merge [`Conflict`](super::merge::MergeVerdict::Conflict)s both count as
//! trust failures; past `--max-audit-failures` of them the endpoint is
//! **quarantined** for the rest of the campaign — its current lease is
//! revoked, its shard handed back through the [`LeaseQueue`](super::lease)
//! give-back for surviving endpoints, and it is never leased to again. The
//! summary reports `audited`, `audit_divergences`, `merge_conflicts`, and
//! `quarantined_endpoints` honestly; the checkpoint itself carries only the
//! (audited) records, so an audited campaign's checkpoint stays
//! byte-identical to an unaudited or thread-mode run.

use mbavf_core::rng::SplitMix64;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Domain tag folded into the audit seed so the sampling stream cannot
/// collide with trial streams, backoff jitter, or the chaos schedule
/// derived from the same user seed.
const AUDIT_TAG: u64 = 0xA0D1_7A0D_17A0_D17A;

/// Parsed `--audit RATE` / `--max-audit-failures N` policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditPolicy {
    /// Sampling rate in 2^-32 units, so selection is integer-exact and
    /// a rate of 1.0 audits every record.
    threshold: u32,
    /// Trust failures (divergences + merge conflicts) an endpoint may
    /// accumulate before it is quarantined. `0` quarantines on the first.
    max_failures: u32,
}

impl AuditPolicy {
    /// Build a policy auditing `rate` (a probability in `[0, 1]`) of all
    /// committed-candidate records, quarantining endpoints past
    /// `max_failures` trust failures.
    #[must_use]
    pub fn new(rate: f64, max_failures: u32) -> AuditPolicy {
        // Same quantization as the chaos engine: branch-exact, and 1.0
        // really selects everything.
        let threshold = if rate >= 1.0 { u32::MAX } else { (rate * f64::from(u32::MAX)) as u32 };
        AuditPolicy { threshold, max_failures }
    }

    /// Whether `trial` is in the audit sample. A pure function of
    /// `(seed, trial)` — never of which worker, endpoint, lease, or attempt
    /// delivered the record — so the audited set is invariant under the
    /// entire execution schedule.
    #[must_use]
    pub fn selects(&self, seed: u64, trial: u64) -> bool {
        if self.threshold == 0 {
            // Rates that quantize to zero mean "audit nothing" — without
            // this gate a draw of exactly 0 would still select.
            return false;
        }
        SplitMix64::stream(seed ^ AUDIT_TAG, trial).next_u32() <= self.threshold
    }

    /// The quarantine budget: trust failures tolerated per endpoint.
    #[must_use]
    pub fn max_failures(&self) -> u32 {
        self.max_failures
    }
}

/// Per-endpoint trust state.
#[derive(Debug, Default)]
struct EndpointTrust {
    /// Trust failures charged so far (divergences + merge conflicts).
    failures: u32,
    /// Whether this endpoint is quarantined for the rest of the campaign.
    quarantined: bool,
}

/// The campaign-wide trust ledger: per-endpoint failure counts keyed by the
/// transport's endpoint description, plus the global audit counters the
/// summary and heartbeat report.
#[derive(Debug)]
pub(crate) struct TrustLedger {
    /// Trust failures tolerated per endpoint before quarantine.
    max_failures: u32,
    endpoints: Mutex<BTreeMap<String, EndpointTrust>>,
    audited: AtomicU64,
    divergences: AtomicU64,
    conflicts: AtomicU64,
}

impl TrustLedger {
    pub(crate) fn new(max_failures: u32) -> TrustLedger {
        TrustLedger {
            max_failures,
            endpoints: Mutex::new(BTreeMap::new()),
            audited: AtomicU64::new(0),
            divergences: AtomicU64::new(0),
            conflicts: AtomicU64::new(0),
        }
    }

    /// An audited record matched its local re-execution.
    pub(crate) fn record_pass(&self) {
        self.audited.fetch_add(1, Ordering::SeqCst);
    }

    /// An audited record diverged from its local re-execution. Charges the
    /// endpoint one trust failure; returns whether it is now quarantined.
    pub(crate) fn record_divergence(&self, endpoint: &str) -> bool {
        self.audited.fetch_add(1, Ordering::SeqCst);
        self.divergences.fetch_add(1, Ordering::SeqCst);
        self.charge(endpoint)
    }

    /// A record conflicted with an already-committed one in the merge.
    /// Charges the endpoint one trust failure; returns whether it is now
    /// quarantined.
    pub(crate) fn record_conflict(&self, endpoint: &str) -> bool {
        self.conflicts.fetch_add(1, Ordering::SeqCst);
        self.charge(endpoint)
    }

    fn charge(&self, endpoint: &str) -> bool {
        let mut map = self.endpoints.lock().expect("trust ledger lock");
        let trust = map.entry(endpoint.to_string()).or_default();
        trust.failures += 1;
        if trust.failures > self.max_failures {
            trust.quarantined = true;
        }
        trust.quarantined
    }

    /// Whether `endpoint` has been quarantined this campaign.
    pub(crate) fn is_quarantined(&self, endpoint: &str) -> bool {
        self.endpoints
            .lock()
            .expect("trust ledger lock")
            .get(endpoint)
            .is_some_and(|t| t.quarantined)
    }

    /// Quarantined endpoints, sorted (the map is ordered by endpoint).
    pub(crate) fn quarantined(&self) -> Vec<String> {
        self.endpoints
            .lock()
            .expect("trust ledger lock")
            .iter()
            .filter(|(_, t)| t.quarantined)
            .map(|(ep, _)| ep.clone())
            .collect()
    }

    /// How many quarantined endpoints the ledger holds.
    pub(crate) fn quarantined_count(&self) -> usize {
        self.endpoints.lock().expect("trust ledger lock").values().filter(|t| t.quarantined).count()
    }

    /// Records audited (re-executed locally), diverged or not.
    pub(crate) fn audited(&self) -> u64 {
        self.audited.load(Ordering::SeqCst)
    }

    /// Audited records whose local re-execution disagreed.
    pub(crate) fn divergences(&self) -> u64 {
        self.divergences.load(Ordering::SeqCst)
    }

    /// Records the merge rejected as conflicting with committed state.
    pub(crate) fn conflicts(&self) -> u64 {
        self.conflicts.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_is_deterministic_and_schedule_invariant() {
        let policy = AuditPolicy::new(0.5, 0);
        let picked: Vec<u64> = (0..256).filter(|&t| policy.selects(7, t)).collect();
        // Same seed, same trials — regardless of evaluation order.
        let again: Vec<u64> = (0..256).rev().filter(|&t| policy.selects(7, t)).collect();
        let mut again_sorted = again;
        again_sorted.sort_unstable();
        assert_eq!(picked, again_sorted);
        // A different seed samples a different set.
        let other: Vec<u64> = (0..256).filter(|&t| policy.selects(8, t)).collect();
        assert_ne!(picked, other);
    }

    #[test]
    fn rate_zero_selects_nothing_and_rate_one_everything() {
        let none = AuditPolicy::new(0.0, 0);
        let all = AuditPolicy::new(1.0, 0);
        for t in 0..512 {
            assert!(!none.selects(3, t));
            assert!(all.selects(3, t));
        }
    }

    #[test]
    fn observed_audit_rate_tracks_requested_rate() {
        let policy = AuditPolicy::new(0.1, 0);
        let picked = (0..10_000).filter(|&t| policy.selects(11, t)).count();
        let observed = picked as f64 / 10_000.0;
        assert!((0.08..0.12).contains(&observed), "observed audit rate {observed}");
    }

    #[test]
    fn ledger_quarantines_past_the_failure_budget() {
        let ledger = TrustLedger::new(1);
        assert!(!ledger.record_divergence("liar:1"), "first failure is within budget");
        assert!(!ledger.is_quarantined("liar:1"));
        assert!(ledger.record_conflict("liar:1"), "second failure crosses the budget");
        assert!(ledger.is_quarantined("liar:1"));
        assert!(!ledger.is_quarantined("honest:2"));
        ledger.record_pass();
        assert_eq!(ledger.audited(), 2);
        assert_eq!(ledger.divergences(), 1);
        assert_eq!(ledger.conflicts(), 1);
        assert_eq!(ledger.quarantined(), vec!["liar:1".to_string()]);
        assert_eq!(ledger.quarantined_count(), 1);
    }

    #[test]
    fn zero_budget_quarantines_on_first_failure() {
        let ledger = TrustLedger::new(0);
        assert!(ledger.record_divergence("liar:1"));
        assert_eq!(ledger.quarantined(), vec!["liar:1".to_string()]);
    }
}
