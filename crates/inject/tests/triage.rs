//! End-to-end triage-layer guarantees: bundle emission is a pure function
//! of the campaign config (any thread count, interrupted or not), every
//! emitted bundle replays to its recorded outcome, and the shrinker is
//! deterministic with a replay-verified result.

use mbavf_inject::campaign::CampaignConfig;
use mbavf_inject::replay::replay_site;
use mbavf_inject::{
    load_bundle, replay_bundle, run_campaign, shrink_and_update, shrink_bundle, CancelToken,
    RunnerConfig,
};
use mbavf_workloads::by_name;
use std::path::{Path, PathBuf};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mbavf-triage-{tag}"));
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn multi_bit_cfg() -> CampaignConfig {
    CampaignConfig { seed: 7, injections: 60, mode_bits: 4, ..CampaignConfig::default() }
}

fn dir_listing(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            (e.file_name().to_string_lossy().into_owned(), std::fs::read(e.path()).unwrap())
        })
        .collect();
    files.sort();
    files
}

/// The bundle directory is byte-identical whether the campaign ran
/// serially, on 4 threads, or was killed and resumed — the e2e determinism
/// proof for the triage layer's ground truth.
#[test]
fn bundle_dirs_are_identical_across_threads_and_resume() {
    let w = by_name("fast_walsh").expect("registered");
    let cfg = multi_bit_cfg();

    let serial_dir = tmpdir("serial");
    let serial = run_campaign(
        &w,
        &cfg,
        &RunnerConfig { repro_dir: Some(serial_dir.clone()), ..RunnerConfig::serial() },
    )
    .unwrap();
    assert!(!serial.bundles.is_empty(), "campaign must emit bundles to compare");
    let want = dir_listing(&serial_dir);

    let par_dir = tmpdir("par");
    run_campaign(
        &w,
        &cfg,
        &RunnerConfig { threads: 4, repro_dir: Some(par_dir.clone()), ..RunnerConfig::default() },
    )
    .unwrap();
    assert_eq!(dir_listing(&par_dir), want, "4-thread bundle dir diverged from serial");

    // Kill after 13 trials, resume to completion on 2 threads.
    let kr_dir = tmpdir("kr");
    let ckpt = kr_dir.join("camp.json");
    let runner = |threads, stop: Option<usize>| RunnerConfig {
        threads,
        checkpoint: Some(ckpt.clone()),
        checkpoint_every: 4,
        cancel: stop.map_or_else(CancelToken::new, CancelToken::limited),
        repro_dir: Some(kr_dir.join("repro")),
        ..RunnerConfig::default()
    };
    run_campaign(&w, &cfg, &runner(1, Some(13))).unwrap();
    let resumed = run_campaign(&w, &cfg, &runner(2, None)).unwrap();
    assert!(resumed.complete);
    assert_eq!(dir_listing(&kr_dir.join("repro")), want, "kill-and-resume bundle dir diverged");

    for d in [serial_dir, par_dir, kr_dir] {
        std::fs::remove_dir_all(&d).ok();
    }
}

/// Every bundle a runner campaign emits replays to its recorded outcome
/// kind — the round trip the whole layer exists for.
#[test]
fn runner_bundles_all_replay() {
    let w = by_name("fast_walsh").expect("registered");
    let dir = tmpdir("replay");
    let report = run_campaign(
        &w,
        &multi_bit_cfg(),
        &RunnerConfig { repro_dir: Some(dir.clone()), ..RunnerConfig::serial() },
    )
    .unwrap();
    assert!(!report.bundles.is_empty());
    for p in &report.bundles {
        let b = load_bundle(p).unwrap_or_else(|e| panic!("{}: {e}", p.display()));
        let r = replay_bundle(&b).unwrap_or_else(|e| panic!("{}: {e}", p.display()));
        assert!(
            r.reproduced,
            "{}: recorded {} but replay observed {}",
            p.display(),
            b.outcome.kind().as_str(),
            r.observed.kind().as_str()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The shrinker is a deterministic function of the bundle, its result
/// reproduces the recorded outcome kind under replay, and
/// `shrink_and_update` persists it into the bundle's `minimized` section.
#[test]
fn shrinking_is_deterministic_and_replay_verified() {
    let w = by_name("fast_walsh").expect("registered");
    let dir = tmpdir("shrink");
    let report = run_campaign(
        &w,
        &multi_bit_cfg(),
        &RunnerConfig { repro_dir: Some(dir.clone()), ..RunnerConfig::serial() },
    )
    .unwrap();
    assert!(!report.bundles.is_empty());

    let mut improved_any = false;
    for p in &report.bundles {
        let b = load_bundle(p).unwrap();
        let once = shrink_bundle(&b).unwrap_or_else(|e| panic!("{}: {e}", p.display()));
        let twice = shrink_bundle(&b).unwrap();
        assert_eq!(once, twice, "{}: shrinker is nondeterministic", p.display());
        assert!(once.mode_bits <= b.mode_bits);
        improved_any |= once.improved;

        // The minimized fault must itself reproduce the recorded kind.
        let r = replay_site(&b, once.site, once.mode_bits).unwrap();
        assert!(
            r.reproduced,
            "{}: minimized {}-bit fault no longer reproduces {}",
            p.display(),
            once.mode_bits,
            b.outcome.kind().as_str()
        );

        // And the write-back lands in the bundle file.
        let written = shrink_and_update(p).unwrap();
        assert_eq!(written, once, "{}: write-back shrank differently", p.display());
        let reloaded = load_bundle(p).unwrap();
        let min = reloaded.minimized.expect("minimized section written");
        assert_eq!(min.site, once.site);
        assert_eq!(min.mode_bits, once.mode_bits);
    }
    assert!(improved_any, "no 4-bit bundle shrank at all — the shrinker test has lost its teeth");
    std::fs::remove_dir_all(&dir).ok();
}
