//! End-to-end distribution checks for the residency-weighted (v2)
//! fault-site sampler, driven against the deliberately lopsided drill
//! workload.
//!
//! The drill's per-workgroup retirement is cubically skewed (64 : 27 : 8 :
//! 1 at four workgroups). The v1 sampler drew the workgroup uniformly and
//! would hand the nearly idle tail a flat 25% of all injections — a 20x
//! over-sampling per retired instruction. These tests measure what an
//! actual campaign does, against retirement counts measured independently
//! of the campaign engine (by single-stepping each workgroup's wavefront).

use mbavf_inject::campaign::CampaignConfig;
use mbavf_inject::{run_campaign, CancelToken, RunnerConfig};
use mbavf_sim::exec::{step, NullPorts, StepCtx, Wavefront};
use mbavf_workloads::{lopsided_drill, Scale, Workload};

/// Retired-instruction count per workgroup, measured with the bare
/// simulator — no campaign machinery involved.
fn measured_retirement(w: &Workload) -> Vec<u64> {
    let mut inst = w.build(Scale::Test);
    let program = inst.program.clone();
    let wgs = inst.workgroups;
    (0..wgs)
        .map(|wg| {
            let mut wf = Wavefront::launch(&program, wg, 0, wgs);
            while !wf.done {
                let mut ctx =
                    StepCtx { mem: &mut inst.mem, trace: None, ports: &mut NullPorts, now: 0 };
                step(&mut wf, &program, &mut ctx);
            }
            wf.retired
        })
        .collect()
}

/// A real campaign's per-workgroup injection counts must track the
/// per-workgroup retirement shares, and every sampled site must fall
/// inside its workgroup's actual execution.
#[test]
fn campaign_injections_track_retirement_shares() {
    let w = lopsided_drill();
    let retired = measured_retirement(&w);
    assert_eq!(retired.len(), 4);
    let total: u64 = retired.iter().sum();

    let cfg = CampaignConfig { seed: 0x10B5_1DED, injections: 4000, ..CampaignConfig::default() };
    let report = run_campaign(&w, &cfg, &RunnerConfig::serial()).unwrap();
    let mut counts = vec![0u64; retired.len()];
    for r in &report.summary.records {
        counts[r.site.wg as usize] += 1;
        assert!(
            r.site.after_retired < retired[r.site.wg as usize],
            "trial {}: site after {} retired, but wg {} only retires {}",
            r.trial,
            r.site.after_retired,
            r.site.wg,
            retired[r.site.wg as usize]
        );
    }

    let n = report.summary.records.len() as f64;
    for (wg, (&count, &ret)) in counts.iter().zip(&retired).enumerate() {
        let got = count as f64 / n;
        let want = ret as f64 / total as f64;
        assert!(
            (got - want).abs() < 0.02,
            "wg {wg}: injected share {got:.4} vs retirement share {want:.4} \
             (counts {counts:?}, retired {retired:?})"
        );
    }

    // The discriminating assertion: the idle tail's share. The v1 sampler
    // gave workgroup 3 a flat 1/4 of all injections; its true retirement
    // share here is ~1%. Anything near uniform means the bias is back.
    let tail = counts[3] as f64 / n;
    assert!(tail < 0.05, "workgroup 3 drew {tail:.3} of injections — v1-style uniform bias");
}

/// The lopsided workload obeys the same engine guarantees as the suite:
/// bit-identical records at any thread count, and kill/resume equivalence.
#[test]
fn lopsided_campaigns_are_thread_and_interrupt_invariant() {
    let w = lopsided_drill();
    let cfg = CampaignConfig { seed: 0x10B5, injections: 60, ..CampaignConfig::default() };
    let serial = run_campaign(&w, &cfg, &RunnerConfig::serial()).unwrap();
    for threads in [2, 5] {
        let par =
            run_campaign(&w, &cfg, &RunnerConfig { threads, ..RunnerConfig::default() }).unwrap();
        assert_eq!(par.summary, serial.summary, "threads {threads}");
    }

    let dir = std::env::temp_dir().join("mbavf-sampling-dist-resume");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("camp.json");
    let interrupted = run_campaign(
        &w,
        &cfg,
        &RunnerConfig {
            checkpoint: Some(ckpt.clone()),
            checkpoint_every: 5,
            cancel: CancelToken::limited(23),
            ..RunnerConfig::serial()
        },
    )
    .unwrap();
    assert!(!interrupted.complete);
    let resumed = run_campaign(
        &w,
        &cfg,
        &RunnerConfig { checkpoint: Some(ckpt), threads: 3, ..RunnerConfig::default() },
    )
    .unwrap();
    assert!(resumed.complete);
    assert!(resumed.resumed >= 20, "expected checkpointed progress, got {}", resumed.resumed);
    assert_eq!(resumed.summary, serial.summary, "kill/resume diverged from the clean run");
    std::fs::remove_dir_all(&dir).ok();
}
