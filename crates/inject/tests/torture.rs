//! Durability torture: checkpoint and repro-bundle loading must survive
//! arbitrary on-disk damage — every possible truncation length and every
//! single-byte corruption of a valid file — without panicking; the campaign
//! engine must quarantine damage and carry on; and the process-isolation
//! supervisor must survive workers that abort, get SIGKILLed, or tear their
//! stdout mid-record.
//!
//! This test runs with `harness = false` and a hand-rolled main: the
//! supervisor re-executes the current binary with a hidden `__worker` argv,
//! which libtest's own main would swallow (recursively running the test
//! suite inside every worker). Our main dispatches `__worker` to
//! [`mbavf_inject::worker_main`] and `__serve` to
//! [`mbavf_inject::serve_main`] before anything else, making re-execution
//! safe. The TCP tests spawn real `__serve` daemons on loopback ephemeral
//! ports and drive them through the networked supervisor.

use mbavf_core::error::{BundleError, CheckpointError};
use mbavf_inject::campaign::{CampaignConfig, Outcome, OutcomeKind};
use mbavf_inject::runner::{quarantine_corrupt, quarantine_path};
use mbavf_inject::supervisor::{default_poison_path, load_poison};
use mbavf_inject::{
    bundle, checkpoint, run_campaign, run_supervised, serve_main, worker_main, AuditPolicy,
    CancelToken, RunnerConfig, SupervisorConfig, TransportKind,
};
use mbavf_workloads::by_name;
use std::io::BufRead as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("__worker") {
        std::process::exit(worker_main(&args[2..]));
    }
    if args.get(1).map(String::as_str) == Some("__serve") {
        std::process::exit(serve_main(&args[2..]));
    }
    let tests: &[(&str, fn())] = &[
        ("checkpoint_load_never_panics_under_damage", checkpoint_load_never_panics_under_damage),
        ("bundle_load_never_panics_under_damage", bundle_load_never_panics_under_damage),
        (
            "quarantine_preserves_every_corpse_and_degrades",
            quarantine_preserves_every_corpse_and_degrades,
        ),
        (
            "kill_resume_with_mid_run_corruption_converges",
            kill_resume_with_mid_run_corruption_converges,
        ),
        (
            "wal_crash_at_every_boundary_resumes_byte_identical",
            wal_crash_at_every_boundary_resumes_byte_identical,
        ),
        (
            "chaos_campaign_checkpoint_matches_fault_free",
            chaos_campaign_checkpoint_matches_fault_free,
        ),
        (
            "process_isolation_matches_thread_mode_bit_exact",
            process_isolation_matches_thread_mode_bit_exact,
        ),
        ("abort_drill_poisons_and_resumes_clean", abort_drill_poisons_and_resumes_clean),
        ("sigkill_mid_shard_recovers_bit_exact", sigkill_mid_shard_recovers_bit_exact),
        ("stdout_truncation_recovers_bit_exact", stdout_truncation_recovers_bit_exact),
        ("process_kill_resume_converges_cross_mode", process_kill_resume_converges_cross_mode),
        ("tcp_loopback_matches_thread_mode_bit_exact", tcp_loopback_matches_thread_mode_bit_exact),
        ("tcp_endpoint_sigkill_fails_over_bit_exact", tcp_endpoint_sigkill_fails_over_bit_exact),
        ("tcp_net_drill_replays_without_double_count", tcp_net_drill_replays_without_double_count),
        ("tcp_lease_expiry_poisons_stalled_trial", tcp_lease_expiry_poisons_stalled_trial),
        ("tcp_unreachable_degrades_to_process_mode", tcp_unreachable_degrades_to_process_mode),
        (
            "tcp_byzantine_liar_is_quarantined_and_bit_exact",
            tcp_byzantine_liar_is_quarantined_and_bit_exact,
        ),
    ];
    let filter = args.iter().skip(1).find(|a| !a.starts_with('-')).cloned();
    let mut ran = 0usize;
    let mut failed = 0usize;
    for (name, f) in tests {
        if let Some(fil) = &filter {
            if !name.contains(fil.as_str()) {
                continue;
            }
        }
        ran += 1;
        println!("test {name} ...");
        match std::panic::catch_unwind(f) {
            Ok(()) => println!("test {name} ... ok"),
            Err(_) => {
                println!("test {name} ... FAILED");
                failed += 1;
            }
        }
    }
    let verdict = if failed == 0 { "ok" } else { "FAILED" };
    println!("\ntest result: {verdict}. {} passed; {failed} failed", ran - failed);
    if failed > 0 {
        std::process::exit(1);
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mbavf-torture-{tag}"));
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Run a tiny campaign that emits both a checkpoint and repro bundles,
/// returning (checkpoint path, bundle paths).
fn seed_artifacts(dir: &Path) -> (PathBuf, Vec<PathBuf>) {
    let w = by_name("fast_walsh").expect("registered");
    let cfg = CampaignConfig { seed: 7, injections: 60, ..CampaignConfig::default() };
    let ckpt = dir.join("camp.json");
    let runner = RunnerConfig {
        checkpoint: Some(ckpt.clone()),
        repro_dir: Some(dir.join("repro")),
        ..RunnerConfig::serial()
    };
    let report = run_campaign(&w, &cfg, &runner).unwrap();
    assert!(!report.bundles.is_empty(), "seed campaign must emit at least one bundle");
    (ckpt, report.bundles)
}

/// A supervisor tuned for tests: tiny shards (so several workers get work),
/// millisecond backoff, and a watchdog short enough to fail fast but long
/// enough for a debug-build worker to do real work.
fn test_supervisor(workers: usize, shard_size: usize) -> SupervisorConfig {
    SupervisorConfig {
        workers,
        shard_size,
        shard_timeout: Duration::from_secs(60),
        max_retries: 1,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(20),
        ..SupervisorConfig::default()
    }
}

/// Every prefix truncation and every single-byte corruption of a valid
/// checkpoint must load as `Ok` or a typed error — never a panic. The
/// damaged loads are run under `catch_unwind` so a regression reports the
/// offending byte rather than aborting the suite.
fn checkpoint_load_never_panics_under_damage() {
    let dir = tmpdir("ckpt");
    let (ckpt, _) = seed_artifacts(&dir);
    let intact = std::fs::read(&ckpt).unwrap();
    assert!(checkpoint::load(&ckpt).is_ok());

    let damaged = dir.join("damaged.json");
    for cut in 0..intact.len() {
        std::fs::write(&damaged, &intact[..cut]).unwrap();
        let got = std::panic::catch_unwind(|| checkpoint::load(&damaged).map(drop));
        match got {
            Ok(_) => {}
            Err(_) => panic!("checkpoint load panicked on truncation to {cut} bytes"),
        }
    }
    for pos in 0..intact.len() {
        let mut bytes = intact.clone();
        bytes[pos] ^= 0x55;
        std::fs::write(&damaged, &bytes).unwrap();
        let got = std::panic::catch_unwind(|| checkpoint::load(&damaged).map(drop));
        match got {
            Ok(
                Ok(_)
                | Err(
                    CheckpointError::Malformed { .. }
                    | CheckpointError::VersionMismatch { .. }
                    | CheckpointError::Io { .. },
                ),
            ) => {}
            Ok(Err(other)) => panic!("unexpected error class at byte {pos}: {other}"),
            Err(_) => panic!("checkpoint load panicked on corrupt byte {pos}"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The same torture applied to repro bundles: `bundle::load` must return
/// `Ok` or a typed [`BundleError`] on every prefix and every flipped byte.
fn bundle_load_never_panics_under_damage() {
    let dir = tmpdir("bundle");
    let (_, bundles) = seed_artifacts(&dir);
    let intact = std::fs::read(&bundles[0]).unwrap();
    assert!(bundle::load(&bundles[0]).is_ok());

    let damaged = dir.join("damaged.repro.json");
    for cut in 0..intact.len() {
        std::fs::write(&damaged, &intact[..cut]).unwrap();
        if std::panic::catch_unwind(|| bundle::load(&damaged).map(drop)).is_err() {
            panic!("bundle load panicked on truncation to {cut} bytes");
        }
    }
    for pos in 0..intact.len() {
        let mut bytes = intact.clone();
        bytes[pos] ^= 0x55;
        std::fs::write(&damaged, &bytes).unwrap();
        match std::panic::catch_unwind(|| bundle::load(&damaged).map(drop)) {
            Ok(
                Ok(())
                | Err(
                    BundleError::Malformed { .. }
                    | BundleError::VersionMismatch { .. }
                    | BundleError::SamplerMismatch { .. }
                    | BundleError::SiteOutOfRange { .. }
                    | BundleError::Io { .. },
                ),
            ) => {}
            Ok(Err(other)) => panic!("unexpected error class at byte {pos}: {other}"),
            Err(_) => panic!("bundle load panicked on corrupt byte {pos}"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Quarantine never clobbers earlier evidence: a second corruption of the
/// same checkpoint moves to `.corrupt.1` while `.corrupt` keeps the first
/// damaged file, and a vanished path degrades to `None` instead of failing.
fn quarantine_preserves_every_corpse_and_degrades() {
    let dir = tmpdir("quarantine");
    let path = dir.join("camp.json");

    std::fs::write(&path, b"first corpse").unwrap();
    let q0 = quarantine_corrupt(&path).expect("first quarantine succeeds");
    assert_eq!(q0, quarantine_path(&path));
    assert_eq!(std::fs::read(&q0).unwrap(), b"first corpse");

    std::fs::write(&path, b"second corpse").unwrap();
    let q1 = quarantine_corrupt(&path).expect("second quarantine succeeds");
    assert_ne!(q0, q1, "second quarantine must not clobber the first");
    assert!(q1.to_string_lossy().ends_with(".corrupt.1"), "got {}", q1.display());
    assert_eq!(std::fs::read(&q0).unwrap(), b"first corpse", "first corpse clobbered");
    assert_eq!(std::fs::read(&q1).unwrap(), b"second corpse");

    std::fs::write(&path, b"third corpse").unwrap();
    let q2 = quarantine_corrupt(&path).expect("third quarantine succeeds");
    assert!(q2.to_string_lossy().ends_with(".corrupt.2"), "got {}", q2.display());

    // A path that cannot be renamed (already gone) degrades to None.
    assert!(quarantine_corrupt(&dir.join("never-existed.json")).is_none());
    std::fs::remove_dir_all(&dir).ok();
}

/// Kill-and-resume loop with damage injected between rounds: whatever
/// prefix the checkpoint holds, a resumed campaign ends with the exact
/// record set of an uninterrupted run, and the bundle set matches too.
fn kill_resume_with_mid_run_corruption_converges() {
    let w = by_name("fast_walsh").expect("registered");
    let cfg = CampaignConfig { seed: 7, injections: 24, ..CampaignConfig::default() };
    let clean_dir = tmpdir("kr-clean");
    let clean = run_campaign(
        &w,
        &cfg,
        &RunnerConfig { repro_dir: Some(clean_dir.join("repro")), ..RunnerConfig::serial() },
    )
    .unwrap();

    let dir = tmpdir("kr");
    let ckpt = dir.join("camp.json");
    let runner = |stop: Option<usize>| RunnerConfig {
        checkpoint: Some(ckpt.clone()),
        checkpoint_every: 2,
        cancel: stop.map_or_else(CancelToken::new, CancelToken::limited),
        repro_dir: Some(dir.join("repro")),
        ..RunnerConfig::serial()
    };

    // Kill after a few trials, then corrupt the tail of the checkpoint.
    run_campaign(&w, &cfg, &runner(Some(5))).unwrap();
    let bytes = std::fs::read(&ckpt).unwrap();
    std::fs::write(&ckpt, &bytes[..bytes.len().saturating_sub(4)]).unwrap();

    // Kill again mid-flight, then run to completion: the quarantine path
    // plus per-trial determinism must still converge on the clean summary.
    run_campaign(&w, &cfg, &runner(Some(9))).unwrap();
    let finished = run_campaign(&w, &cfg, &runner(None)).unwrap();
    assert!(finished.complete);
    assert_eq!(finished.summary, clean.summary, "records diverged after corruption + resume");

    // Record-for-record identity on disk, and identical bundle bytes.
    let reloaded = checkpoint::load(&ckpt).unwrap();
    assert_eq!(reloaded.records, clean.summary.records);
    assert_eq!(finished.bundles.len(), clean.bundles.len());
    for (a, b) in finished.bundles.iter().zip(&clean.bundles) {
        assert_eq!(a.file_name(), b.file_name());
        assert_eq!(std::fs::read(a).unwrap(), std::fs::read(b).unwrap(), "{}", a.display());
    }
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&clean_dir).ok();
}

/// Crash-at-every-write-boundary drill for the write-ahead trial journal.
/// The durable cycle is append → compact (temp write, rename) → journal
/// reset; a crash can land between any two of those steps. Each iteration
/// fabricates the exact on-disk state such a crash leaves behind — snapshot
/// holding the first `m` records, journal holding the next `j` frames,
/// plus torn-tail, stale-temp-file, and compacted-but-not-reset
/// (duplicate-frame) variants — and the resumed campaign must always end
/// with a checkpoint byte-identical to an uninterrupted run's.
fn wal_crash_at_every_boundary_resumes_byte_identical() {
    use mbavf_inject::checkpoint::wal;

    let w = by_name("fast_walsh").expect("registered");
    let cfg = CampaignConfig { seed: 7, injections: 24, ..CampaignConfig::default() };
    let fingerprint = checkpoint::config_fingerprint(w.name, &cfg);

    let ref_dir = tmpdir("walb-ref");
    let ref_ckpt = ref_dir.join("camp.json");
    run_campaign(
        &w,
        &cfg,
        &RunnerConfig { checkpoint: Some(ref_ckpt.clone()), ..RunnerConfig::serial() },
    )
    .unwrap();
    let reference = std::fs::read(&ref_ckpt).unwrap();
    let all = checkpoint::load(&ref_ckpt).unwrap().records;

    let dir = tmpdir("walb");
    let ckpt = dir.join("camp.json");
    let wal_file = wal::wal_path(&ckpt);
    let resume = RunnerConfig {
        checkpoint: Some(ckpt.clone()),
        checkpoint_every: 4,
        ..RunnerConfig::serial()
    };

    // Snapshot of the first `m` records + journal frames for the next `j`.
    let fabricate = |m: usize, j: usize| {
        std::fs::remove_file(&ckpt).ok();
        std::fs::remove_file(&wal_file).ok();
        if m > 0 {
            checkpoint::save(&ckpt, w.name, fingerprint, cfg.mode_bits, &all[..m]).unwrap();
        }
        let mut writer = wal::WalWriter::create(&ckpt, w.name, fingerprint, cfg.mode_bits)
            .expect("journal create");
        for r in &all[m..m + j] {
            writer.append(r).expect("journal append");
        }
    };
    let check = |label: &str| {
        let report = run_campaign(&w, &cfg, &resume).unwrap();
        assert!(report.complete, "{label}");
        assert_eq!(
            std::fs::read(&ckpt).unwrap(),
            reference,
            "{label}: resumed checkpoint must be byte-identical to the uninterrupted run"
        );
        assert!(!wal_file.exists(), "{label}: a finished campaign must remove its journal");
    };

    // Crash between trial appends, for every journal length — including
    // j = 0 (crash right after a reset) and m = 0 (crash before the first
    // compaction ever succeeded, the journal alone carrying the records).
    for j in 0..=6 {
        fabricate(6, j);
        check(&format!("append boundary m=6 j={j}"));
    }
    fabricate(0, 5);
    check("journal-only state (crash before first snapshot)");

    // Crash mid-append: a torn partial frame past the committed tail.
    fabricate(6, 3);
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new().append(true).open(&wal_file).unwrap();
        f.write_all(&[0, 0, 0, 96, 0xde, 0xad, 0xbe]).unwrap();
    }
    check("torn frame past the committed tail");

    // Crash mid-compaction: the snapshot's temp file written but not yet
    // renamed. Resume must ignore the temp and replace it.
    fabricate(6, 3);
    std::fs::write(ckpt.with_extension("tmp"), b"{ half a snapsh").unwrap();
    check("stale snapshot temp file");

    // Crash between compaction's rename and the journal reset: the
    // snapshot already holds the journaled records, so every frame must
    // replay as an idempotent-merge duplicate, not a double-count.
    std::fs::remove_file(&ckpt).ok();
    std::fs::remove_file(&wal_file).ok();
    checkpoint::save(&ckpt, w.name, fingerprint, cfg.mode_bits, &all[..9]).unwrap();
    {
        let mut writer = wal::WalWriter::create(&ckpt, w.name, fingerprint, cfg.mode_bits)
            .expect("journal create");
        for r in &all[6..9] {
            writer.append(r).expect("journal append");
        }
    }
    check("compacted but journal not yet reset (duplicate frames)");

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&ref_dir).ok();
}

/// End-to-end chaos: with the deterministic fault engine injecting into
/// every durable write the harness makes, a campaign still completes, no
/// committed record is lost, and the final checkpoint is byte-identical to
/// a fault-free run's. Runs in this sequential binary because the chaos
/// engine is process-global — installing it under libtest's parallel
/// harness would inject faults into unrelated tests.
fn chaos_campaign_checkpoint_matches_fault_free() {
    /// Uninstall on every exit path, including panics, so a failure here
    /// cannot leak faults into the rest of the suite.
    struct ClearChaos;
    impl Drop for ClearChaos {
        fn drop(&mut self) {
            mbavf_inject::chaos::clear();
        }
    }

    let w = by_name("fast_walsh").expect("registered");
    let cfg = CampaignConfig { seed: 7, injections: 60, ..CampaignConfig::default() };

    let clean_dir = tmpdir("chaos-clean");
    let clean_ckpt = clean_dir.join("camp.json");
    let clean = run_campaign(
        &w,
        &cfg,
        &RunnerConfig {
            checkpoint: Some(clean_ckpt.clone()),
            repro_dir: Some(clean_dir.join("repro")),
            ..RunnerConfig::serial()
        },
    )
    .unwrap();
    let reference = std::fs::read(&clean_ckpt).unwrap();

    let dir = tmpdir("chaos");
    let ckpt = dir.join("camp.json");
    let runner = RunnerConfig {
        checkpoint: Some(ckpt.clone()),
        checkpoint_every: 4,
        repro_dir: Some(dir.join("repro")),
        ..RunnerConfig::serial()
    };
    let _guard = ClearChaos;
    let engine =
        mbavf_inject::chaos::install(mbavf_inject::ChaosSpec { seed: 0xC4A0_5EED, rate: 0.1 });
    let report = run_campaign(&w, &cfg, &runner).unwrap();
    mbavf_inject::chaos::clear();

    assert!(report.complete);
    assert!(engine.injected() > 0, "a 10% chaos rate must actually inject faults");
    assert_eq!(
        std::fs::read(&ckpt).unwrap(),
        reference,
        "chaos run's final checkpoint must be byte-identical to the fault-free run's"
    );
    assert_eq!(report.summary.records, clean.summary.records, "no committed record may be lost");
    assert_eq!(report.bundles.len(), clean.bundles.len());
    for (a, b) in report.bundles.iter().zip(&clean.bundles) {
        assert_eq!(std::fs::read(a).unwrap(), std::fs::read(b).unwrap(), "{}", a.display());
    }
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&clean_dir).ok();
}

/// Real subprocess workers (re-executing this binary through `__worker`)
/// must produce records bit-identical to the in-process thread engine, at
/// any worker count and shard size — including crash outcomes, whose
/// reasons cross the stdout protocol as escaped JSON.
fn process_isolation_matches_thread_mode_bit_exact() {
    let w = by_name("histogram").expect("registered");
    let cfg = CampaignConfig {
        seed: 0xC0FFEE,
        injections: 40,
        wrap_oob: false,
        ..CampaignConfig::default()
    };
    let thread = run_campaign(&w, &cfg, &RunnerConfig::serial()).unwrap();
    assert!(
        thread.summary.count(OutcomeKind::Crash) > 0,
        "campaign must include crash outcomes to exercise reason transport"
    );
    for (workers, shard_size) in [(1usize, 8usize), (2, 8), (3, 64)] {
        let sup = test_supervisor(workers, shard_size);
        let report = run_supervised(&w, &cfg, &RunnerConfig::serial(), &sup).unwrap();
        assert!(report.complete, "workers={workers} shard={shard_size}");
        assert!(report.poisoned.is_empty(), "workers={workers} shard={shard_size}");
        assert_eq!(report.summary, thread.summary, "workers={workers} shard={shard_size}");
        assert!(report.trial_latency.is_some(), "worker latencies must reach the report");
    }
}

/// The abort drill end-to-end: a worker that calls `std::process::abort()`
/// on a marker trial is retried, bisected, and the marker poisoned — the
/// campaign completes with N−1 trials, the sidecar and a repro bundle name
/// exactly the marker, and a later resume leaves the quarantine intact.
fn abort_drill_poisons_and_resumes_clean() {
    let w = by_name("fast_walsh").expect("registered");
    let cfg = CampaignConfig { seed: 7, injections: 12, ..CampaignConfig::default() };
    let dir = tmpdir("abort-drill");
    let ckpt = dir.join("camp.json");
    let runner = RunnerConfig {
        checkpoint: Some(ckpt.clone()),
        checkpoint_every: 4,
        repro_dir: Some(dir.join("repro")),
        ..RunnerConfig::serial()
    };
    let marker = 5u64;
    let mut sup = test_supervisor(2, 4);
    sup.worker_env = vec![("MBAVF_ABORT_DRILL".into(), marker.to_string())];

    let report = run_supervised(&w, &cfg, &runner, &sup).unwrap();
    assert!(report.complete);
    assert_eq!(report.newly_run, 11);
    assert_eq!(report.poisoned.len(), 1, "poisoned: {:?}", report.poisoned);
    assert_eq!(report.poisoned[0].trial, marker);
    assert!(report.summary.records.iter().all(|r| r.trial != marker));

    // The sidecar names exactly the drilled trial.
    let sidecar = load_poison(&default_poison_path(&ckpt)).unwrap();
    assert_eq!(sidecar.entries.len(), 1);
    assert_eq!(sidecar.entries[0].trial, marker);
    assert_eq!(sidecar.config_hash, checkpoint::config_fingerprint(w.name, &cfg));

    // The poisoned trial has a standard repro bundle, flagged as poison.
    let fp = checkpoint::config_fingerprint(w.name, &cfg);
    let bpath = bundle::bundle_path(&dir.join("repro"), w.name, fp, marker, OutcomeKind::Crash);
    assert!(bpath.exists(), "missing poison bundle {}", bpath.display());
    let b = bundle::load(&bpath).unwrap();
    assert!(
        matches!(&b.outcome, Outcome::Crash { reason } if reason.starts_with("poison: ")),
        "{:?}",
        b.outcome
    );

    // Resume without the drill: the quarantine holds (the trial is *not*
    // retried just because the environment recovered), nothing re-runs, and
    // the summary is unchanged.
    let resume = run_supervised(&w, &cfg, &runner, &test_supervisor(1, 4)).unwrap();
    assert!(resume.complete);
    assert_eq!(resume.newly_run, 0);
    assert_eq!(resume.resumed, 11);
    assert_eq!(resume.poisoned, report.poisoned);
    assert_eq!(resume.summary, report.summary);
    std::fs::remove_dir_all(&dir).ok();
}

/// SIGKILL mid-shard: the worker kills itself (simulating the OOM killer)
/// before the marker trial on its first attempt only. The respawn must pick
/// up exactly the remaining trials and converge bit-exact with no poison.
fn sigkill_mid_shard_recovers_bit_exact() {
    let w = by_name("fast_walsh").expect("registered");
    let cfg = CampaignConfig { seed: 7, injections: 12, ..CampaignConfig::default() };
    let thread = run_campaign(&w, &cfg, &RunnerConfig::serial()).unwrap();
    let mut sup = test_supervisor(2, 4);
    sup.worker_env = vec![("MBAVF_KILL_DRILL".into(), "6".into())];
    let report = run_supervised(&w, &cfg, &RunnerConfig::serial(), &sup).unwrap();
    assert!(report.complete);
    assert!(report.poisoned.is_empty(), "kill drill must recover, not poison");
    assert_eq!(report.summary, thread.summary);
}

/// Torn stdout: the worker writes half a record line, flushes, and exits
/// cleanly. The supervisor must discard the partial line, respawn on the
/// remaining trials, and converge bit-exact with no poison.
fn stdout_truncation_recovers_bit_exact() {
    let w = by_name("fast_walsh").expect("registered");
    let cfg = CampaignConfig { seed: 7, injections: 12, ..CampaignConfig::default() };
    let thread = run_campaign(&w, &cfg, &RunnerConfig::serial()).unwrap();
    let mut sup = test_supervisor(2, 4);
    sup.worker_env = vec![("MBAVF_TRUNC_DRILL".into(), "2".into())];
    let report = run_supervised(&w, &cfg, &RunnerConfig::serial(), &sup).unwrap();
    assert!(report.complete);
    assert!(report.poisoned.is_empty(), "truncation must recover, not poison");
    assert_eq!(report.summary, thread.summary);
}

/// A process-isolated campaign interrupted by a trial budget must resume —
/// in *thread* mode — into the identical final checkpoint and summary:
/// isolation is an execution property, never a record property.
fn process_kill_resume_converges_cross_mode() {
    let w = by_name("fast_walsh").expect("registered");
    let cfg = CampaignConfig { seed: 7, injections: 16, ..CampaignConfig::default() };
    let clean = run_campaign(&w, &cfg, &RunnerConfig::serial()).unwrap();

    let dir = tmpdir("proc-resume");
    let ckpt = dir.join("camp.json");
    let runner = |stop: Option<usize>| RunnerConfig {
        checkpoint: Some(ckpt.clone()),
        checkpoint_every: 2,
        cancel: stop.map_or_else(CancelToken::new, CancelToken::limited),
        ..RunnerConfig::serial()
    };
    let first = run_supervised(&w, &cfg, &runner(Some(6)), &test_supervisor(2, 4)).unwrap();
    assert!(!first.complete);
    assert_eq!(first.newly_run, 6);

    let finished = run_campaign(&w, &cfg, &runner(None)).unwrap();
    assert!(finished.complete);
    assert_eq!(finished.resumed, 6);
    assert_eq!(finished.summary, clean.summary, "process-then-thread resume diverged");
    let reloaded = checkpoint::load(&ckpt).unwrap();
    assert_eq!(reloaded.records, clean.summary.records);
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// TCP transport torture
// ---------------------------------------------------------------------------

/// A real `__serve` worker daemon on a loopback ephemeral port, killed on
/// drop. The bound address is parsed from the daemon's single stdout
/// announcement line.
struct Daemon {
    child: std::process::Child,
    addr: String,
}

impl Daemon {
    fn spawn(env: &[(&str, &str)]) -> Daemon {
        let exe = std::env::current_exe().expect("current exe");
        let mut cmd = std::process::Command::new(exe);
        cmd.args(["__serve", "--listen", "127.0.0.1:0"])
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null());
        for (k, v) in env {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("spawn __serve daemon");
        let stdout = child.stdout.take().expect("daemon stdout piped");
        let mut line = String::new();
        std::io::BufReader::new(stdout).read_line(&mut line).expect("daemon announcement");
        // {"mbavf_serve": 1, "listen": "127.0.0.1:PORT"}
        let addr = line
            .split("\"listen\": \"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .unwrap_or_else(|| panic!("unparseable daemon announcement: {line:?}"))
            .to_string();
        Daemon { child, addr }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// A TCP supervisor config tuned for tests: short lease, fast backoff.
fn tcp_supervisor(endpoints: Vec<String>, shard_size: usize) -> SupervisorConfig {
    SupervisorConfig {
        shard_size,
        max_retries: 1,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(20),
        transport: TransportKind::Tcp { endpoints },
        lease_timeout: Duration::from_secs(30),
        ..SupervisorConfig::default()
    }
}

/// A campaign leased to two loopback daemons must land the exact thread-mode
/// summary AND write a byte-identical checkpoint — the tentpole invariant:
/// transport is an execution property, never a record property.
fn tcp_loopback_matches_thread_mode_bit_exact() {
    let w = by_name("histogram").expect("registered");
    let cfg = CampaignConfig {
        seed: 0xC0FFEE,
        injections: 40,
        wrap_oob: false,
        ..CampaignConfig::default()
    };
    let dir = tmpdir("tcp-loopback");
    let thread_ckpt = dir.join("thread.json");
    let tcp_ckpt = dir.join("tcp.json");
    let runner = |ckpt: &Path| RunnerConfig {
        checkpoint: Some(ckpt.to_path_buf()),
        checkpoint_every: 8,
        ..RunnerConfig::serial()
    };
    let thread = run_campaign(&w, &cfg, &runner(&thread_ckpt)).unwrap();
    assert!(
        thread.summary.count(OutcomeKind::Crash) > 0,
        "campaign must include crash outcomes to exercise reason framing"
    );

    let (a, b) = (Daemon::spawn(&[]), Daemon::spawn(&[]));
    let sup = tcp_supervisor(vec![a.addr.clone(), b.addr.clone()], 8);
    let report = run_supervised(&w, &cfg, &runner(&tcp_ckpt), &sup).unwrap();
    assert!(report.complete);
    assert!(report.poisoned.is_empty(), "{:?}", report.poisoned);
    assert_eq!(report.summary, thread.summary);
    assert!(report.trial_latency.is_some(), "remote latencies must reach the report");
    assert_eq!(
        std::fs::read(&tcp_ckpt).unwrap(),
        std::fs::read(&thread_ckpt).unwrap(),
        "tcp checkpoint must be byte-identical to thread mode"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// SIGKILL an entire worker daemon mid-shard (the net kill drill fires on
/// every attempt, so the killed endpoint can never serve the marker). The
/// supervisor must re-offer the dead endpoint's shard — failure history
/// intact — to the surviving daemon and converge bit-exact with no poison.
fn tcp_endpoint_sigkill_fails_over_bit_exact() {
    let w = by_name("fast_walsh").expect("registered");
    let cfg = CampaignConfig { seed: 7, injections: 24, ..CampaignConfig::default() };
    let thread = run_campaign(&w, &cfg, &RunnerConfig::serial()).unwrap();

    let doomed = Daemon::spawn(&[("MBAVF_NET_KILL_DRILL", "2")]);
    let survivor = Daemon::spawn(&[]);
    let sup = tcp_supervisor(vec![doomed.addr.clone(), survivor.addr.clone()], 8);
    let report = run_supervised(&w, &cfg, &RunnerConfig::serial(), &sup).unwrap();
    assert!(report.complete);
    assert!(report.poisoned.is_empty(), "failover must recover, not poison: {:?}", report.poisoned);
    assert_eq!(report.summary, thread.summary);
}

/// The hostile-network drill: the daemon replays every record of the lease
/// as duplicates, then severs the connection inside a frame's length
/// prefix. The idempotent merge must drop the replays without recounting,
/// the torn frame must not panic the supervisor, and the reconnect must
/// resume from the first missing trial — honest completion, bit-exact.
fn tcp_net_drill_replays_without_double_count() {
    let w = by_name("fast_walsh").expect("registered");
    let cfg = CampaignConfig { seed: 7, injections: 24, ..CampaignConfig::default() };
    let thread = run_campaign(&w, &cfg, &RunnerConfig::serial()).unwrap();

    let daemon = Daemon::spawn(&[("MBAVF_NET_DRILL", "5")]);
    let sup = tcp_supervisor(vec![daemon.addr.clone()], 8);
    let report = run_supervised(&w, &cfg, &RunnerConfig::serial(), &sup).unwrap();
    assert!(report.complete);
    assert!(report.poisoned.is_empty(), "replays must recover, not poison: {:?}", report.poisoned);
    assert_eq!(report.summary, thread.summary);
    assert_eq!(report.newly_run, 24, "duplicated records must not inflate the count");
}

/// A daemon whose executor freezes on the marker trial while its heartbeat
/// keeps beating: the progress-gated lease must expire anyway, and since
/// the stall recurs on every attempt, the marker is eventually poisoned —
/// with the lease named as the reason — while every other trial completes.
fn tcp_lease_expiry_poisons_stalled_trial() {
    let w = by_name("fast_walsh").expect("registered");
    let cfg = CampaignConfig { seed: 7, injections: 12, ..CampaignConfig::default() };
    let marker = 5u64;
    let daemon = Daemon::spawn(&[("MBAVF_NET_STALL_DRILL", &marker.to_string())]);
    let mut sup = tcp_supervisor(vec![daemon.addr.clone()], 4);
    sup.lease_timeout = Duration::from_millis(400);
    let report = run_supervised(&w, &cfg, &RunnerConfig::serial(), &sup).unwrap();
    assert!(report.complete);
    assert_eq!(report.newly_run, 11);
    assert_eq!(report.poisoned.len(), 1, "poisoned: {:?}", report.poisoned);
    assert_eq!(report.poisoned[0].trial, marker);
    assert!(
        report.poisoned[0].reason.contains("lease expired"),
        "reason must name the lease: {}",
        report.poisoned[0].reason
    );
    assert!(report.summary.records.iter().all(|r| r.trial != marker));
}

/// No endpoint ever connects (nothing listens on the address): before any
/// record lands, the campaign must degrade to local process isolation and
/// still finish bit-exact — same contract as process→thread degradation.
fn tcp_unreachable_degrades_to_process_mode() {
    let w = by_name("fast_walsh").expect("registered");
    let cfg = CampaignConfig { seed: 7, injections: 12, ..CampaignConfig::default() };
    let thread = run_campaign(&w, &cfg, &RunnerConfig::serial()).unwrap();

    // Reserve a loopback port and close it, so the dial is refused fast.
    let dead_addr = {
        let sock = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        sock.local_addr().unwrap().to_string()
    };
    let mut sup = tcp_supervisor(vec![dead_addr], 4);
    sup.lease_timeout = Duration::from_secs(2);
    let report = run_supervised(&w, &cfg, &RunnerConfig::serial(), &sup).unwrap();
    assert!(report.complete);
    assert!(report.poisoned.is_empty());
    assert_eq!(report.summary, thread.summary);
}

/// The Byzantine drill: one honest daemon, one daemon that computes every
/// trial correctly and then lies about the verdict (`MBAVF_LIE_DRILL` at
/// rate 1.0 flips every outcome it reports). With `--audit 1.0` every
/// incoming record is re-executed locally before commit, so the liar's
/// first record diverges, the trust ledger quarantines the endpoint
/// (one-strike default), the local truth is committed in the lie's place,
/// and the liar's shards hand over to the honest daemon. The campaign must
/// finish with records — and a checkpoint — byte-identical to fault-free
/// thread mode, and must name exactly the lying endpoint.
fn tcp_byzantine_liar_is_quarantined_and_bit_exact() {
    let w = by_name("fast_walsh").expect("registered");
    let cfg = CampaignConfig { seed: 7, injections: 24, ..CampaignConfig::default() };
    let dir = tmpdir("tcp-byzantine");
    let thread_ckpt = dir.join("thread.json");
    let tcp_ckpt = dir.join("tcp.json");
    let runner = |ckpt: &Path| RunnerConfig {
        checkpoint: Some(ckpt.to_path_buf()),
        checkpoint_every: 8,
        ..RunnerConfig::serial()
    };
    let thread = run_campaign(&w, &cfg, &runner(&thread_ckpt)).unwrap();

    let honest = Daemon::spawn(&[]);
    let liar = Daemon::spawn(&[("MBAVF_LIE_DRILL", "9:1")]);
    let mut sup = tcp_supervisor(vec![honest.addr.clone(), liar.addr.clone()], 8);
    sup.audit = Some(AuditPolicy::new(1.0, 0));
    let report = run_supervised(&w, &cfg, &runner(&tcp_ckpt), &sup).unwrap();

    assert!(report.complete);
    assert!(
        report.poisoned.is_empty(),
        "lies must be corrected, not poisoned: {:?}",
        report.poisoned
    );
    // The liar was caught on its first committed record and named; the
    // honest endpoint kept its good name.
    assert_eq!(
        report.summary.quarantined_endpoints,
        vec![liar.addr.clone()],
        "exactly the lying endpoint must be quarantined"
    );
    assert!(report.summary.audit_divergences >= 1, "the audit must have caught at least one lie");
    // With --audit 1.0 every newly committed record was audited, and the
    // audit sample is chosen by (seed, trial) alone — worker-count-invariant.
    assert_eq!(report.summary.audited, 24);
    // Every lie was replaced by the local truth before commit: the records
    // and the checkpoint are exactly thread mode's.
    assert_eq!(report.summary.records, thread.summary.records);
    assert_eq!(
        std::fs::read(&tcp_ckpt).unwrap(),
        std::fs::read(&thread_ckpt).unwrap(),
        "audited checkpoint must be byte-identical to thread mode"
    );
    std::fs::remove_dir_all(&dir).ok();
}
