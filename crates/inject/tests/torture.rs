//! Durability torture: checkpoint and repro-bundle loading must survive
//! arbitrary on-disk damage — every possible truncation length and every
//! single-byte corruption of a valid file — without panicking, and the
//! campaign engine must quarantine damage and carry on.

use mbavf_core::error::{BundleError, CheckpointError};
use mbavf_inject::campaign::CampaignConfig;
use mbavf_inject::runner::{quarantine_corrupt, quarantine_path};
use mbavf_inject::{bundle, checkpoint, run_campaign, RunnerConfig};
use mbavf_workloads::by_name;
use std::path::{Path, PathBuf};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mbavf-torture-{tag}"));
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Run a tiny campaign that emits both a checkpoint and repro bundles,
/// returning (checkpoint path, bundle paths).
fn seed_artifacts(dir: &Path) -> (PathBuf, Vec<PathBuf>) {
    let w = by_name("fast_walsh").expect("registered");
    let cfg = CampaignConfig { seed: 7, injections: 60, ..CampaignConfig::default() };
    let ckpt = dir.join("camp.json");
    let runner = RunnerConfig {
        checkpoint: Some(ckpt.clone()),
        repro_dir: Some(dir.join("repro")),
        ..RunnerConfig::serial()
    };
    let report = run_campaign(&w, &cfg, &runner).unwrap();
    assert!(!report.bundles.is_empty(), "seed campaign must emit at least one bundle");
    (ckpt, report.bundles)
}

/// Every prefix truncation and every single-byte corruption of a valid
/// checkpoint must load as `Ok` or a typed error — never a panic. The
/// damaged loads are run under `catch_unwind` so a regression reports the
/// offending byte rather than aborting the suite.
#[test]
fn checkpoint_load_never_panics_under_damage() {
    let dir = tmpdir("ckpt");
    let (ckpt, _) = seed_artifacts(&dir);
    let intact = std::fs::read(&ckpt).unwrap();
    assert!(checkpoint::load(&ckpt).is_ok());

    let damaged = dir.join("damaged.json");
    for cut in 0..intact.len() {
        std::fs::write(&damaged, &intact[..cut]).unwrap();
        let got = std::panic::catch_unwind(|| checkpoint::load(&damaged).map(drop));
        match got {
            Ok(_) => {}
            Err(_) => panic!("checkpoint load panicked on truncation to {cut} bytes"),
        }
    }
    for pos in 0..intact.len() {
        let mut bytes = intact.clone();
        bytes[pos] ^= 0x55;
        std::fs::write(&damaged, &bytes).unwrap();
        let got = std::panic::catch_unwind(|| checkpoint::load(&damaged).map(drop));
        match got {
            Ok(
                Ok(_)
                | Err(
                    CheckpointError::Malformed { .. }
                    | CheckpointError::VersionMismatch { .. }
                    | CheckpointError::Io { .. },
                ),
            ) => {}
            Ok(Err(other)) => panic!("unexpected error class at byte {pos}: {other}"),
            Err(_) => panic!("checkpoint load panicked on corrupt byte {pos}"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The same torture applied to repro bundles: `bundle::load` must return
/// `Ok` or a typed [`BundleError`] on every prefix and every flipped byte.
#[test]
fn bundle_load_never_panics_under_damage() {
    let dir = tmpdir("bundle");
    let (_, bundles) = seed_artifacts(&dir);
    let intact = std::fs::read(&bundles[0]).unwrap();
    assert!(bundle::load(&bundles[0]).is_ok());

    let damaged = dir.join("damaged.repro.json");
    for cut in 0..intact.len() {
        std::fs::write(&damaged, &intact[..cut]).unwrap();
        if std::panic::catch_unwind(|| bundle::load(&damaged).map(drop)).is_err() {
            panic!("bundle load panicked on truncation to {cut} bytes");
        }
    }
    for pos in 0..intact.len() {
        let mut bytes = intact.clone();
        bytes[pos] ^= 0x55;
        std::fs::write(&damaged, &bytes).unwrap();
        match std::panic::catch_unwind(|| bundle::load(&damaged).map(drop)) {
            Ok(
                Ok(())
                | Err(
                    BundleError::Malformed { .. }
                    | BundleError::VersionMismatch { .. }
                    | BundleError::SamplerMismatch { .. }
                    | BundleError::SiteOutOfRange { .. }
                    | BundleError::Io { .. },
                ),
            ) => {}
            Ok(Err(other)) => panic!("unexpected error class at byte {pos}: {other}"),
            Err(_) => panic!("bundle load panicked on corrupt byte {pos}"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Quarantine never clobbers earlier evidence: a second corruption of the
/// same checkpoint moves to `.corrupt.1` while `.corrupt` keeps the first
/// damaged file, and a vanished path degrades to `None` instead of failing.
#[test]
fn quarantine_preserves_every_corpse_and_degrades() {
    let dir = tmpdir("quarantine");
    let path = dir.join("camp.json");

    std::fs::write(&path, b"first corpse").unwrap();
    let q0 = quarantine_corrupt(&path).expect("first quarantine succeeds");
    assert_eq!(q0, quarantine_path(&path));
    assert_eq!(std::fs::read(&q0).unwrap(), b"first corpse");

    std::fs::write(&path, b"second corpse").unwrap();
    let q1 = quarantine_corrupt(&path).expect("second quarantine succeeds");
    assert_ne!(q0, q1, "second quarantine must not clobber the first");
    assert!(q1.to_string_lossy().ends_with(".corrupt.1"), "got {}", q1.display());
    assert_eq!(std::fs::read(&q0).unwrap(), b"first corpse", "first corpse clobbered");
    assert_eq!(std::fs::read(&q1).unwrap(), b"second corpse");

    std::fs::write(&path, b"third corpse").unwrap();
    let q2 = quarantine_corrupt(&path).expect("third quarantine succeeds");
    assert!(q2.to_string_lossy().ends_with(".corrupt.2"), "got {}", q2.display());

    // A path that cannot be renamed (already gone) degrades to None.
    assert!(quarantine_corrupt(&dir.join("never-existed.json")).is_none());
    std::fs::remove_dir_all(&dir).ok();
}

/// Kill-and-resume loop with damage injected between rounds: whatever
/// prefix the checkpoint holds, a resumed campaign ends with the exact
/// record set of an uninterrupted run, and the bundle set matches too.
#[test]
fn kill_resume_with_mid_run_corruption_converges() {
    let w = by_name("fast_walsh").expect("registered");
    let cfg = CampaignConfig { seed: 7, injections: 24, ..CampaignConfig::default() };
    let clean_dir = tmpdir("kr-clean");
    let clean = run_campaign(
        &w,
        &cfg,
        &RunnerConfig { repro_dir: Some(clean_dir.join("repro")), ..RunnerConfig::serial() },
    )
    .unwrap();

    let dir = tmpdir("kr");
    let ckpt = dir.join("camp.json");
    let runner = |stop| RunnerConfig {
        checkpoint: Some(ckpt.clone()),
        checkpoint_every: 2,
        stop_after: stop,
        repro_dir: Some(dir.join("repro")),
        ..RunnerConfig::serial()
    };

    // Kill after a few trials, then corrupt the tail of the checkpoint.
    run_campaign(&w, &cfg, &runner(Some(5))).unwrap();
    let bytes = std::fs::read(&ckpt).unwrap();
    std::fs::write(&ckpt, &bytes[..bytes.len().saturating_sub(4)]).unwrap();

    // Kill again mid-flight, then run to completion: the quarantine path
    // plus per-trial determinism must still converge on the clean summary.
    run_campaign(&w, &cfg, &runner(Some(9))).unwrap();
    let finished = run_campaign(&w, &cfg, &runner(None)).unwrap();
    assert!(finished.complete);
    assert_eq!(finished.summary, clean.summary, "records diverged after corruption + resume");

    // Record-for-record identity on disk, and identical bundle bytes.
    let reloaded = checkpoint::load(&ckpt).unwrap();
    assert_eq!(reloaded.records, clean.summary.records);
    assert_eq!(finished.bundles.len(), clean.bundles.len());
    for (a, b) in finished.bundles.iter().zip(&clean.bundles) {
        assert_eq!(a.file_name(), b.file_name());
        assert_eq!(std::fs::read(a).unwrap(), std::fs::read(b).unwrap(), "{}", a.display());
    }
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&clean_dir).ok();
}
