//! Repro-bundle format conformance, pinned against a checked-in fixture.
//!
//! `tests/fixtures/conformance.repro.json` is a real bundle emitted by a
//! fast_walsh campaign (seed 7, trial 5) under the v2 residency-weighted
//! sampler. The test pins its golden FNV-1a digest, its fingerprint, its
//! fault site, and its replay verdict as literals. If any of these drift —
//! a sampler change, a golden-run change, a fingerprint-scheme change, a
//! format change — this test fails, which is the signal to bump the bundle
//! format version and regenerate the fixture *deliberately* rather than
//! silently invalidating every bundle users have on disk.

use mbavf_inject::campaign::{FaultSite, Outcome};
use mbavf_inject::{load_bundle, replay_bundle, BUNDLE_VERSION, SAMPLER_ID};
use std::path::PathBuf;

fn fixture() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/conformance.repro.json")
}

/// Every field of the checked-in bundle, bit for bit.
#[test]
fn conformance_fixture_parses_to_the_pinned_bundle() {
    let b = load_bundle(&fixture()).unwrap_or_else(|e| panic!("fixture must load: {e}"));
    assert_eq!(b.workload, "fast_walsh");
    assert_eq!(b.seed, 7);
    assert_eq!(b.trial, 5);
    assert_eq!(b.mode_bits, 1);
    assert!(b.wrap_oob);
    assert_eq!(b.hang_factor, 8);
    assert_eq!(b.site, FaultSite { wg: 1, after_retired: 47, reg: 4, lane: 21, bit: 16 });
    assert_eq!(b.outcome, Outcome::Sdc);
    assert!(b.read_before_overwrite);
    // The two integrity anchors: the campaign fingerprint and the golden
    // output's FNV-1a digest, as literals. A change here means this build
    // would refuse (or misread) every bundle written by the previous one.
    assert_eq!(b.config_fingerprint, 9_640_199_761_213_749_073);
    assert_eq!(b.golden_digest, 15_510_683_022_007_955_151);
    assert_eq!(b.minimized, None);
}

/// The fixture's recorded verdict must reproduce on this build.
#[test]
fn conformance_fixture_replays_to_the_recorded_verdict() {
    let b = load_bundle(&fixture()).unwrap();
    let report = replay_bundle(&b).unwrap_or_else(|e| panic!("fixture must replay: {e}"));
    assert!(report.reproduced, "recorded sdc, observed {:?}", report.observed);
    assert_eq!(report.observed, Outcome::Sdc);
    assert!(report.read_before_overwrite);
}

/// The fixture's raw text carries the current format version and sampler
/// stamp — guarding the serialization side, not just the parse.
#[test]
fn conformance_fixture_is_stamped_with_the_current_format() {
    let text = std::fs::read_to_string(fixture()).unwrap();
    assert!(text.contains(&format!("\"version\": {BUNDLE_VERSION}")));
    assert!(text.contains(&format!("\"sampler\": \"{SAMPLER_ID}\"")));
}
