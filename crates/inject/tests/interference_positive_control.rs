//! Positive control for the ACE-interference machinery: a kernel built so
//! that two specific adjacent bit flips cancel (the paper's XOR example in
//! Section VII: "A single-bit fault in the least significant bit of either
//! byte alone could result in SDC. A multi-bit fault covering both bits,
//! however, will be unACE since the result of the XOR operation will be the
//! same as in the fault-free case").
//!
//! Table II's near-zero interference rate is only meaningful if the
//! framework *would* report interference where it exists — this test
//! manufactures it.

use mbavf_sim::interp::{run_functional, run_golden, Injection};
use mbavf_sim::isa::VReg;
use mbavf_sim::program::Assembler;
use mbavf_sim::Memory;

/// Kernel: out[i] = (v3 ^ (v3 >> 1)) & 1 — the output depends only on the
/// XOR of bits 0 and 1 of v3. Flipping either bit alone flips the output;
/// flipping both together leaves it unchanged.
fn build() -> (mbavf_sim::Program, Memory) {
    let mut mem = Memory::with_tracking(1 << 16, false);
    let out = mem.alloc_zeroed(64);
    mem.mark_output(out, 256);
    let mut a = Assembler::new();
    a.v_add_u(VReg(3), VReg(1), 0x35u32); // some value derived from the id
    a.v_shr(VReg(4), VReg(3), 1u32);
    a.v_xor(VReg(4), VReg(4), VReg(3));
    a.v_and(VReg(4), VReg(4), 1u32);
    a.v_mul_u(VReg(5), VReg(1), 4u32);
    a.v_store(VReg(4), VReg(5), out);
    a.end();
    (a.finish().unwrap(), mem)
}

fn outcome(bits: u32) -> bool {
    // Returns true if the injected run's output differs from golden.
    let (p, mut mem) = build();
    let golden = run_golden(&p, &mut mem, 1).output;
    let (p2, mut mem2) = build();
    let inj = Injection { wg: 0, after_retired: 1, reg: 3, lane: 7, bits };
    let r = run_functional(&p2, &mut mem2, 1, &[inj], 10_000).unwrap();
    r.output != golden
}

#[test]
fn xor_cancellation_is_real_ace_interference() {
    // Each single-bit flip of bits 0 and 1 corrupts the output...
    assert!(outcome(0b01), "bit 0 alone must cause SDC");
    assert!(outcome(0b10), "bit 1 alone must cause SDC");
    // ...but the 2x1 fault covering both cancels inside the XOR.
    assert!(!outcome(0b11), "flipping both bits must be masked: the XOR of the two flips cancels");
    // This is exactly the condition interference_study counts: the union of
    // single-bit outcomes (SDC) contradicts the multi-bit outcome (masked).
}

#[test]
fn higher_bits_do_not_cancel() {
    // Bits above the mask are dead in this kernel: no outcome either way,
    // and in particular no spurious "interference" from dead state.
    assert!(!outcome(0b100), "bit 2 is masked off by the AND");
    assert!(!outcome(0b1100));
}
