//! Property test for the idempotent record merge: delivering a campaign's
//! record stream in ANY order, with ANY duplicated prefixes mixed in, must
//! merge to exactly the records — and therefore the checkpoint — of the
//! in-order stream. This is the invariant the TCP transport's
//! reconnect-with-resume leans on: a retried lease replays already-committed
//! records, a reordering network shuffles frames, and neither may change a
//! single byte of the result.

use mbavf_core::rng::SplitMix64;
use mbavf_inject::campaign::{CampaignConfig, SingleBitRecord};
use mbavf_inject::{checkpoint, run_campaign, MergeVerdict, RecordMerge, RunnerConfig};
use mbavf_workloads::by_name;
use std::path::PathBuf;

/// Real records from a real (small) campaign, so the merged payloads carry
/// everything the wire format carries — including crash reasons.
fn campaign_records() -> Vec<SingleBitRecord> {
    let w = by_name("histogram").expect("registered");
    let cfg = CampaignConfig {
        seed: 0xC0FFEE,
        injections: 48,
        wrap_oob: false,
        ..CampaignConfig::default()
    };
    run_campaign(&w, &cfg, &RunnerConfig::serial()).unwrap().summary.records
}

fn shuffle(stream: &mut [SingleBitRecord], rng: &mut SplitMix64) {
    for i in (1..stream.len()).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        stream.swap(i, j);
    }
}

#[test]
fn any_permutation_with_duplicated_prefixes_merges_to_the_in_order_result() {
    let records = campaign_records();
    let budget = records.len();

    let mut in_order = RecordMerge::new(budget);
    for r in &records {
        assert_eq!(in_order.offer(r.clone()), MergeVerdict::Fresh);
    }
    let expected = in_order.records();
    assert_eq!(expected, records, "in-order merge must reproduce the stream");

    for round in 0..32u64 {
        let mut rng = SplitMix64::stream(0xD15C0, round);
        // The delivery schedule a hostile network might produce: the full
        // stream, plus a few re-sent prefixes (what a retried lease replays
        // after a mid-shard death), all shuffled together.
        let mut stream = records.clone();
        for _ in 0..rng.below(4) {
            let cut = rng.below(budget as u64 + 1) as usize;
            stream.extend(records[..cut].iter().cloned());
        }
        shuffle(&mut stream, &mut rng);

        let mut merge = RecordMerge::new(budget);
        let mut fresh = 0usize;
        for r in stream {
            match merge.offer(r) {
                MergeVerdict::Fresh => fresh += 1,
                MergeVerdict::Duplicate => {}
                other => panic!("round {round}: unexpected verdict {other:?}"),
            }
        }
        assert_eq!(fresh, budget, "round {round}: every trial exactly once");
        assert_eq!(merge.merged(), budget);
        assert_eq!(merge.records(), expected, "round {round}: merged result diverged");
    }
}

#[test]
fn merged_records_checkpoint_identically_to_the_in_order_stream() {
    let records = campaign_records();
    let budget = records.len();
    let dir = std::env::temp_dir().join("mbavf-merge-props");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let write = |name: &str, recs: &[SingleBitRecord]| -> PathBuf {
        let path = dir.join(name);
        checkpoint::save(&path, "histogram", 0xFEED, 1, recs).unwrap();
        path
    };
    let baseline = write("in-order.json", &records);

    let mut rng = SplitMix64::stream(0xD15C0, 99);
    let mut stream = records.clone();
    stream.extend(records[..budget / 2].iter().cloned());
    shuffle(&mut stream, &mut rng);
    let mut merge = RecordMerge::new(budget);
    for r in stream {
        assert!(!matches!(
            merge.offer(r),
            MergeVerdict::Conflict { .. } | MergeVerdict::Foreign { .. }
        ));
    }
    let merged = write("merged.json", &merge.records());

    assert_eq!(
        std::fs::read(&merged).unwrap(),
        std::fs::read(&baseline).unwrap(),
        "checkpoint of the merged stream must be byte-identical"
    );
    std::fs::remove_dir_all(&dir).ok();
}
