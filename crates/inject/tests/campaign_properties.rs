//! Property-style coverage of the campaign engine's headline guarantees:
//! thread-count invariance, interrupt/resume equivalence, checkpoint
//! round-tripping, and crash isolation as recorded data.
//!
//! Cases are generated from vendored SplitMix64 streams so every failure
//! reproduces from the case index in the assertion message.

use mbavf_core::rng::SplitMix64;
use mbavf_inject::campaign::{CampaignConfig, FaultSite, Outcome, SingleBitRecord};
use mbavf_inject::checkpoint;
use mbavf_inject::{run_campaign, RunnerConfig};
use mbavf_workloads::by_name;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mbavf-campaign-props-{tag}"));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// For random campaign seeds, the summary is a pure function of the config:
/// any thread count produces bit-identical records.
#[test]
fn summaries_are_thread_count_invariant_across_seeds() {
    let w = by_name("dct").expect("registered");
    let mut seeds = SplitMix64::new(0x7112EAD5);
    for case in 0..3 {
        let cfg =
            CampaignConfig { seed: seeds.next_u64(), injections: 16, ..CampaignConfig::default() };
        let serial = run_campaign(&w, &cfg, &RunnerConfig::serial()).unwrap();
        for threads in [3, 8] {
            let par = run_campaign(&w, &cfg, &RunnerConfig { threads, ..RunnerConfig::default() })
                .unwrap();
            assert_eq!(par.summary, serial.summary, "case {case}, threads {threads}");
        }
    }
}

/// Interrupting a campaign at *any* point and resuming from its checkpoint
/// reproduces the uninterrupted summary exactly.
#[test]
fn resume_matches_uninterrupted_at_every_stop_point() {
    let w = by_name("fast_walsh").expect("registered");
    let cfg = CampaignConfig { seed: 0x5709, injections: 8, ..CampaignConfig::default() };
    let uninterrupted = run_campaign(&w, &cfg, &RunnerConfig::serial()).unwrap();
    let dir = tmpdir("every-stop");

    for stop in 0..cfg.injections {
        let path = dir.join(format!("stop{stop}.json"));
        std::fs::remove_file(&path).ok();
        let interrupted = run_campaign(
            &w,
            &cfg,
            &RunnerConfig {
                threads: 1,
                checkpoint: Some(path.clone()),
                checkpoint_every: 2,
                stop_after: Some(stop),
            },
        )
        .unwrap();
        assert_eq!(interrupted.newly_run, stop, "stop {stop}");
        assert_eq!(interrupted.complete, stop == cfg.injections, "stop {stop}");

        let resumed = run_campaign(
            &w,
            &cfg,
            &RunnerConfig { checkpoint: Some(path), ..RunnerConfig::default() },
        )
        .unwrap();
        assert!(resumed.complete, "stop {stop}");
        assert_eq!(resumed.resumed, stop, "stop {stop}");
        assert_eq!(resumed.summary, uninterrupted.summary, "stop {stop}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Random record sets survive a render/load round trip bit-for-bit.
#[test]
fn checkpoints_roundtrip_random_records() {
    let dir = tmpdir("roundtrip");
    for case in 0u64..20 {
        let mut rng = SplitMix64::stream(0x0BE1, case);
        let n = rng.range_u64(0, 12);
        let mut records: Vec<SingleBitRecord> = (0..n)
            .map(|trial| SingleBitRecord {
                trial: trial * rng.range_u64(1, 9),
                site: FaultSite {
                    wg: rng.below(8) as u32,
                    after_retired: rng.next_u64() >> 20,
                    reg: rng.below(32) as u8,
                    lane: rng.below(64) as u8,
                    bit: rng.below(32) as u8,
                },
                outcome: match rng.below(4) {
                    0 => Outcome::Masked,
                    1 => Outcome::Sdc,
                    2 => Outcome::Hang,
                    _ => Outcome::Crash {
                        reason: format!("panic \"{}\" at line {}\n\ttrace", case, rng.below(999)),
                    },
                },
                read_before_overwrite: rng.bool(),
            })
            .collect();
        records.sort_by_key(|r| r.trial);
        records.dedup_by_key(|r| r.trial);

        let path = dir.join(format!("c{case}.json"));
        let hash = rng.next_u64();
        checkpoint::save(&path, "prop", hash, &records).unwrap();
        let loaded = checkpoint::load(&path).unwrap();
        assert_eq!(loaded.config_hash, hash, "case {case}");
        assert_eq!(loaded.records, records, "case {case}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The crash positive control: with OOB wrapping disabled, fault-induced
/// interpreter panics are recorded as Crash outcomes — and even those
/// records (including their captured panic text) are identical across
/// thread counts.
#[test]
fn crash_records_are_data_and_deterministic() {
    let w = by_name("histogram").expect("registered");
    let cfg = CampaignConfig {
        seed: 0xBAD_ACCE55,
        injections: 80,
        wrap_oob: false,
        ..CampaignConfig::default()
    };
    let serial = run_campaign(&w, &cfg, &RunnerConfig::serial()).unwrap();
    let crashes: Vec<&SingleBitRecord> = serial
        .summary
        .records
        .iter()
        .filter(|r| matches!(r.outcome, Outcome::Crash { .. }))
        .collect();
    assert!(!crashes.is_empty(), "expected wild accesses to crash with wrap_oob off");
    for r in &crashes {
        let Outcome::Crash { reason } = &r.outcome else { unreachable!() };
        assert!(!reason.is_empty());
    }

    let par =
        run_campaign(&w, &cfg, &RunnerConfig { threads: 4, ..RunnerConfig::default() }).unwrap();
    assert_eq!(par.summary, serial.summary);

    // The same seed with paper semantics (wrapping) records no crashes.
    let wrapped =
        run_campaign(&w, &CampaignConfig { wrap_oob: true, ..cfg }, &RunnerConfig::serial())
            .unwrap();
    assert!(
        wrapped.summary.records.iter().all(|r| !matches!(r.outcome, Outcome::Crash { .. })),
        "wrapping memory must not crash"
    );
}
