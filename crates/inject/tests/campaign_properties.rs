//! Property-style coverage of the campaign engine's headline guarantees:
//! thread-count invariance, interrupt/resume equivalence, checkpoint
//! round-tripping, and crash isolation as recorded data.
//!
//! Cases are generated from vendored SplitMix64 streams so every failure
//! reproduces from the case index in the assertion message.

use mbavf_core::rng::SplitMix64;
use mbavf_inject::campaign::{CampaignConfig, FaultSite, Outcome, SingleBitRecord};
use mbavf_inject::checkpoint;
use mbavf_inject::runner::quarantine_path;
use mbavf_inject::{run_adaptive, run_campaign, AdaptiveConfig, CancelToken, RunnerConfig};
use mbavf_workloads::{by_name, nondet_drill};
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mbavf-campaign-props-{tag}"));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// For random campaign seeds, the summary is a pure function of the config:
/// any thread count produces bit-identical records.
#[test]
fn summaries_are_thread_count_invariant_across_seeds() {
    let w = by_name("dct").expect("registered");
    let mut seeds = SplitMix64::new(0x7112EAD5);
    for case in 0..3 {
        let cfg =
            CampaignConfig { seed: seeds.next_u64(), injections: 16, ..CampaignConfig::default() };
        let serial = run_campaign(&w, &cfg, &RunnerConfig::serial()).unwrap();
        for threads in [3, 8] {
            let par = run_campaign(&w, &cfg, &RunnerConfig { threads, ..RunnerConfig::default() })
                .unwrap();
            assert_eq!(par.summary, serial.summary, "case {case}, threads {threads}");
        }
        // Batch width is an execution knob exactly like the thread count.
        for batch_width in [2, 3, 8] {
            let batched = run_campaign(
                &w,
                &cfg,
                &RunnerConfig { threads: 3, batch_width, ..RunnerConfig::default() },
            )
            .unwrap();
            assert_eq!(batched.summary, serial.summary, "case {case}, width {batch_width}");
        }
    }
}

/// A batched campaign's *artifacts* — not just the in-memory summary — are
/// bit-identical to the width-1 sequential path: final checkpoint bytes and
/// every repro bundle, at every batch width.
#[test]
fn batched_artifacts_match_width_one_byte_for_byte() {
    let w = by_name("scan_large").expect("registered");
    let cfg = CampaignConfig { seed: 0xBA7C4, injections: 30, ..CampaignConfig::default() };
    let dir = tmpdir("batch-artifacts");

    let run_with = |width: usize| {
        let ckpt = dir.join(format!("w{width}.ckpt.json"));
        let bundles = dir.join(format!("w{width}-bundles"));
        std::fs::remove_file(&ckpt).ok();
        std::fs::remove_dir_all(&bundles).ok();
        let report = run_campaign(
            &w,
            &cfg,
            &RunnerConfig {
                threads: 2,
                batch_width: width,
                checkpoint: Some(ckpt.clone()),
                checkpoint_every: 4,
                repro_dir: Some(bundles.clone()),
                ..RunnerConfig::default()
            },
        )
        .unwrap();
        let bundle_files: Vec<(String, Vec<u8>)> = report
            .bundles
            .iter()
            .map(|p| {
                (p.file_name().unwrap().to_string_lossy().into_owned(), std::fs::read(p).unwrap())
            })
            .collect();
        (report.summary, std::fs::read(&ckpt).unwrap(), bundle_files)
    };

    let (base_summary, base_ckpt, base_bundles) = run_with(1);
    for width in [2usize, 3, 8] {
        let (summary, ckpt, bundles) = run_with(width);
        assert_eq!(summary, base_summary, "width {width}: records diverged");
        assert_eq!(ckpt, base_ckpt, "width {width}: checkpoint bytes diverged");
        assert_eq!(bundles, base_bundles, "width {width}: repro bundles diverged");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Interrupting a batched campaign and resuming it at a *different* batch
/// width converges on the width-1 uninterrupted summary: the checkpoint
/// carries no trace of how trials were grouped.
#[test]
fn resume_across_batch_width_change_matches_uninterrupted() {
    let w = by_name("fast_walsh").expect("registered");
    let cfg = CampaignConfig { seed: 0x51DE, injections: 20, ..CampaignConfig::default() };
    let uninterrupted = run_campaign(&w, &cfg, &RunnerConfig::serial()).unwrap();
    let dir = tmpdir("width-change");

    for stop in [1usize, 5, 13] {
        let path = dir.join(format!("wc{stop}.json"));
        std::fs::remove_file(&path).ok();
        let interrupted = run_campaign(
            &w,
            &cfg,
            &RunnerConfig {
                threads: 2,
                batch_width: 3,
                checkpoint: Some(path.clone()),
                checkpoint_every: 2,
                cancel: CancelToken::limited(stop),
                ..RunnerConfig::default()
            },
        )
        .unwrap();
        assert_eq!(interrupted.newly_run, stop, "stop {stop}");

        let resumed = run_campaign(
            &w,
            &cfg,
            &RunnerConfig { batch_width: 8, checkpoint: Some(path), ..RunnerConfig::default() },
        )
        .unwrap();
        assert!(resumed.complete, "stop {stop}");
        assert_eq!(resumed.resumed, stop, "stop {stop}");
        assert_eq!(resumed.summary, uninterrupted.summary, "stop {stop}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Interrupting a campaign at *any* point and resuming from its checkpoint
/// reproduces the uninterrupted summary exactly.
#[test]
fn resume_matches_uninterrupted_at_every_stop_point() {
    let w = by_name("fast_walsh").expect("registered");
    let cfg = CampaignConfig { seed: 0x5709, injections: 8, ..CampaignConfig::default() };
    let uninterrupted = run_campaign(&w, &cfg, &RunnerConfig::serial()).unwrap();
    let dir = tmpdir("every-stop");

    for stop in 0..cfg.injections {
        let path = dir.join(format!("stop{stop}.json"));
        std::fs::remove_file(&path).ok();
        let interrupted = run_campaign(
            &w,
            &cfg,
            &RunnerConfig {
                threads: 1,
                checkpoint: Some(path.clone()),
                checkpoint_every: 2,
                cancel: CancelToken::limited(stop),
                ..RunnerConfig::default()
            },
        )
        .unwrap();
        assert_eq!(interrupted.newly_run, stop, "stop {stop}");
        assert_eq!(interrupted.complete, stop == cfg.injections, "stop {stop}");

        let resumed = run_campaign(
            &w,
            &cfg,
            &RunnerConfig { checkpoint: Some(path), ..RunnerConfig::default() },
        )
        .unwrap();
        assert!(resumed.complete, "stop {stop}");
        assert_eq!(resumed.resumed, stop, "stop {stop}");
        assert_eq!(resumed.summary, uninterrupted.summary, "stop {stop}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Random record sets survive a render/load round trip bit-for-bit.
#[test]
fn checkpoints_roundtrip_random_records() {
    let dir = tmpdir("roundtrip");
    for case in 0u64..20 {
        let mut rng = SplitMix64::stream(0x0BE1, case);
        let n = rng.range_u64(0, 12);
        let mut records: Vec<SingleBitRecord> = (0..n)
            .map(|trial| SingleBitRecord {
                trial: trial * rng.range_u64(1, 9),
                site: FaultSite {
                    wg: rng.below(8) as u32,
                    after_retired: rng.next_u64() >> 20,
                    reg: rng.below(32) as u8,
                    lane: rng.below(64) as u8,
                    bit: rng.below(32) as u8,
                },
                outcome: match rng.below(4) {
                    0 => Outcome::Masked,
                    1 => Outcome::Sdc,
                    2 => Outcome::Hang,
                    _ => Outcome::Crash {
                        reason: format!("panic \"{}\" at line {}\n\ttrace", case, rng.below(999)),
                    },
                },
                read_before_overwrite: rng.bool(),
            })
            .collect();
        records.sort_by_key(|r| r.trial);
        records.dedup_by_key(|r| r.trial);

        let path = dir.join(format!("c{case}.json"));
        let hash = rng.next_u64();
        checkpoint::save(&path, "prop", hash, 1, &records).unwrap();
        let loaded = checkpoint::load(&path).unwrap();
        assert_eq!(loaded.config_hash, hash, "case {case}");
        assert_eq!(loaded.records, records, "case {case}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Adaptive sizing follows a deterministic stage schedule, so its trial
/// count — and every record — is bit-identical across thread counts.
#[test]
fn adaptive_campaigns_are_thread_count_invariant() {
    let w = by_name("dct").expect("registered");
    let cfg = CampaignConfig { seed: 0xADA7, ..CampaignConfig::default() };
    // A target loose enough to be reachable, tight enough to need growth
    // past the first batch.
    let adaptive =
        AdaptiveConfig { target_halfwidth: 0.09, batch: 24, max_injections: 384, confidence: 0.95 };
    let serial = run_adaptive(&w, &cfg, &RunnerConfig::serial(), &adaptive).unwrap();
    assert!(
        serial.stages.len() > 1,
        "target must require more than one batch: {:?}",
        serial.stages
    );
    assert_eq!(serial.stages, {
        let all = adaptive.stage_budgets();
        all[..serial.stages.len()].to_vec()
    });
    if serial.target_met {
        assert!(serial.sdc.halfwidth() <= adaptive.target_halfwidth);
    } else {
        assert_eq!(*serial.stages.last().unwrap(), adaptive.max_injections);
    }
    for threads in [2, 6] {
        let par =
            run_adaptive(&w, &cfg, &RunnerConfig { threads, ..RunnerConfig::default() }, &adaptive)
                .unwrap();
        assert_eq!(par.report.summary, serial.report.summary, "threads {threads}");
        assert_eq!(par.sdc, serial.sdc, "threads {threads}");
        assert_eq!(par.stages, serial.stages, "threads {threads}");
        assert_eq!(par.target_met, serial.target_met, "threads {threads}");
    }
}

/// Interrupting an adaptive campaign at several points and resuming from
/// its checkpoint converges to the identical final state: the records, the
/// interval, and the stopping decision are all interruption-invariant.
#[test]
fn adaptive_resume_matches_uninterrupted() {
    let w = by_name("fast_walsh").expect("registered");
    let cfg = CampaignConfig { seed: 0x2E5, ..CampaignConfig::default() };
    let adaptive =
        AdaptiveConfig { target_halfwidth: 0.08, batch: 16, max_injections: 256, confidence: 0.95 };
    let uninterrupted = run_adaptive(&w, &cfg, &RunnerConfig::serial(), &adaptive).unwrap();
    assert!(uninterrupted.stages.len() > 1, "want a multi-stage run: {:?}", uninterrupted.stages);

    let dir = tmpdir("adaptive-resume");
    for stop in [1usize, 7, 20, 33] {
        let path = dir.join(format!("ada{stop}.json"));
        std::fs::remove_file(&path).ok();
        // Drive the campaign in `stop`-trial slices until it completes.
        let mut rounds = 0;
        let finished = loop {
            let slice = run_adaptive(
                &w,
                &cfg,
                &RunnerConfig {
                    threads: 2,
                    checkpoint: Some(path.clone()),
                    checkpoint_every: 4,
                    cancel: CancelToken::limited(stop),
                    ..RunnerConfig::default()
                },
                &adaptive,
            )
            .unwrap();
            rounds += 1;
            assert!(rounds < 1000, "stop {stop}: adaptive run failed to converge");
            if slice.target_met || slice.report.complete {
                break slice;
            }
        };
        assert_eq!(
            finished.report.summary, uninterrupted.report.summary,
            "stop {stop}: records diverged"
        );
        assert_eq!(finished.sdc, uninterrupted.sdc, "stop {stop}");
        assert_eq!(finished.target_met, uninterrupted.target_met, "stop {stop}");
        assert_eq!(
            finished.stages.last(),
            uninterrupted.stages.last(),
            "stop {stop}: final budget diverged"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A corrupt (truncated) checkpoint is quarantined to `<path>.corrupt` and
/// the campaign restarts cleanly, reproducing the uncorrupted summary.
#[test]
fn corrupt_checkpoints_are_quarantined_and_recovered() {
    let w = by_name("transpose").expect("registered");
    let cfg = CampaignConfig { seed: 0xC0, injections: 12, ..CampaignConfig::default() };
    let clean = run_campaign(&w, &cfg, &RunnerConfig::serial()).unwrap();

    let dir = tmpdir("quarantine");
    let path = dir.join("camp.json");
    let runner = RunnerConfig { checkpoint: Some(path.clone()), ..RunnerConfig::serial() };
    run_campaign(&w, &cfg, &runner).unwrap();
    let intact = std::fs::read(&path).unwrap();

    // Truncation at any of these byte offsets must be survivable: the file
    // is set aside and the campaign restarts from zero.
    for cut in [0usize, 1, intact.len() / 4, intact.len() / 2, intact.len() - 3] {
        std::fs::write(&path, &intact[..cut]).unwrap();
        std::fs::remove_file(quarantine_path(&path)).ok();

        let recovered = run_campaign(&w, &cfg, &runner)
            .unwrap_or_else(|e| panic!("cut at {cut}: recovery failed: {e}"));
        assert_eq!(recovered.resumed, 0, "cut at {cut}: nothing valid to resume");
        assert_eq!(recovered.newly_run, cfg.injections, "cut at {cut}");
        assert_eq!(recovered.summary, clean.summary, "cut at {cut}");
        assert_eq!(
            std::fs::read(quarantine_path(&path)).unwrap(),
            intact[..cut],
            "cut at {cut}: quarantined bytes must be the damaged file"
        );
        // The rewritten checkpoint is valid again.
        assert_eq!(checkpoint::load(&path).unwrap().records.len(), cfg.injections);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The integrity negative control: a workload whose golden run drifts
/// between builds must be refused outright — classifying injections against
/// an unstable reference would poison every verdict.
#[test]
fn nondeterministic_golden_runs_are_refused() {
    let w = nondet_drill();
    let cfg = CampaignConfig { injections: 4, ..CampaignConfig::default() };
    let err =
        run_campaign(&w, &cfg, &RunnerConfig::serial()).expect_err("the drill exists to be caught");
    let msg = err.to_string();
    assert!(msg.contains("nondeterministic"), "unhelpful diagnostic: {msg}");
}

/// The crash positive control: with OOB wrapping disabled, fault-induced
/// interpreter panics are recorded as Crash outcomes — and even those
/// records (including their captured panic text) are identical across
/// thread counts.
#[test]
fn crash_records_are_data_and_deterministic() {
    let w = by_name("histogram").expect("registered");
    let cfg = CampaignConfig {
        seed: 0xBAD_ACCE55,
        injections: 80,
        wrap_oob: false,
        ..CampaignConfig::default()
    };
    let serial = run_campaign(&w, &cfg, &RunnerConfig::serial()).unwrap();
    let crashes: Vec<&SingleBitRecord> = serial
        .summary
        .records
        .iter()
        .filter(|r| matches!(r.outcome, Outcome::Crash { .. }))
        .collect();
    assert!(!crashes.is_empty(), "expected wild accesses to crash with wrap_oob off");
    for r in &crashes {
        let Outcome::Crash { reason } = &r.outcome else { unreachable!() };
        assert!(!reason.is_empty());
    }

    let par =
        run_campaign(&w, &cfg, &RunnerConfig { threads: 4, ..RunnerConfig::default() }).unwrap();
    assert_eq!(par.summary, serial.summary);

    // Batched execution retires crashy trials onto the sequential path, so
    // even the captured panic text matches byte for byte at any width.
    let batched = run_campaign(
        &w,
        &cfg,
        &RunnerConfig { threads: 4, batch_width: 8, ..RunnerConfig::default() },
    )
    .unwrap();
    assert_eq!(batched.summary, serial.summary);

    // The same seed with paper semantics (wrapping) records no crashes.
    let wrapped =
        run_campaign(&w, &CampaignConfig { wrap_oob: true, ..cfg }, &RunnerConfig::serial())
            .unwrap();
    assert!(
        wrapped.summary.records.iter().all(|r| !matches!(r.outcome, Outcome::Crash { .. })),
        "wrapping memory must not crash"
    );
}
