//! MiniFE-style conjugate-gradient solve (Mantevo `MiniFE`).
//!
//! A finite-element mini-app skeleton with the paper's Figure 5 phase
//! structure: a matrix/RHS **assembly** phase (streaming writes over an
//! element buffer) followed by a **CG solve** phase (neighbour stencils,
//! dot-product reductions, vector updates), whose cache behaviour differs
//! sharply — the source of MiniFE's time-varying SB/MB-AVF ratio.
//!
//! Each workgroup independently solves a 64-unknown tridiagonal system
//! `A x = b` with `A = tridiag(-1, 2.5, -1)` by CG, with a data-dependent
//! convergence exit (`v_read_lane` + scalar float compare).

use crate::util::{check_f32, emit_wg_sum_f32, gen_f32};
use crate::{Instance, InstanceMeta, Scale};
use mbavf_sim::isa::{CmpOp, SReg, VOp, VReg};
use mbavf_sim::program::Assembler;
use mbavf_sim::Memory;

const N: u32 = 64; // unknowns per workgroup/system
const DIAG: f32 = 2.5;
const MAX_ITERS: u32 = 8;
const EPS: f32 = 1e-10;

/// Build the workload.
pub fn build(scale: Scale) -> Instance {
    let systems = match scale {
        Scale::Test => 1u32,
        Scale::Paper => 4,
    };
    let n = systems * N;
    let mut mem = Memory::new(1 << 20);
    let elem_src = gen_f32(0xBB, (n * 4) as usize);
    let elem_in = mem.alloc_f32(&elem_src); // raw element data
    let mesh_addr = mem.alloc_zeroed(n * 4); // assembled element buffer
    let b_addr = mem.alloc_zeroed(n); // RHS
    let p_addr = mem.alloc_zeroed(n); // search direction (in memory: stencil)
    let red_addr = mem.alloc_zeroed(n); // reduction scratch
    let x_addr = mem.alloc_zeroed(n); // solution
    mem.mark_output(x_addr, n * 4);

    let mut a = Assembler::new();
    let g4 = VReg(2); // global id * 4
    let (rhs, xv, rv, pv, ap) = (VReg(3), VReg(4), VReg(5), VReg(6), VReg(7));
    let (t0, t1, t2) = (VReg(8), VReg(9), VReg(10));
    let (rs, pap, alpha, rsnew, beta) = (VReg(11), VReg(12), VReg(13), VReg(14), VReg(15));
    let (red_tmp, red_addr_v) = (VReg(16), VReg(17));
    let (s_it, s_red_i, s_red_a, s_conv) = (SReg(2), SReg(3), SReg(4), SReg(5));

    a.v_mul_u(g4, VReg(1), 4u32);

    // --- Assembly phase: scale 4 element contributions per row into the
    // mesh buffer (streaming writes), then gather them back to form the RHS
    // (streaming reads) — the write-then-read traffic pattern of FE
    // assembly, and a cache phase distinct from the solve.
    let e4 = t0;
    a.v_mul_u(e4, VReg(1), 16u32); // 4 entries per row
    for k in 0..4u32 {
        a.v_load(t1, e4, elem_in + k * 4);
        a.v_mul_f(t2, t1, VOp::imm_f32(0.5));
        a.v_store(t2, e4, mesh_addr + k * 4); // assembled element values
    }
    a.v_mov(rhs, VOp::imm_f32(0.0));
    a.v_mul_u(e4, VReg(1), 16u32);
    for k in 0..4u32 {
        a.v_load(t2, e4, mesh_addr + k * 4);
        a.v_add_f(rhs, rhs, t2);
    }
    a.v_store(rhs, g4, b_addr);

    // --- CG setup: x = 0, r = b, p = b.
    a.v_mov(xv, VOp::imm_f32(0.0));
    a.v_mov(rv, rhs);
    a.v_store(rhs, g4, p_addr);
    // rs = r . r
    a.v_mov(rs, VOp::imm_f32(0.0));
    a.v_mul_f(t0, rv, rv);
    emit_wg_sum_f32(&mut a, "rs0", red_addr, t0, rs, red_tmp, red_addr_v, s_red_i, s_red_a);

    a.s_mov(s_it, 0u32);
    a.label("cg");
    // Ap = DIAG*p - p[i-1] - p[i+1] (zero at the system boundary).
    a.v_load(pv, g4, p_addr);
    // left neighbour: lanes with lane==0 use 0.
    a.v_cmp(CmpOp::GeU, VReg(0), 1u32);
    a.v_sub_u(t0, g4, 4u32);
    a.v_sel(t0, t0, g4);
    a.v_load(t1, t0, p_addr);
    a.v_sel(t1, t1, VOp::imm_f32(0.0));
    // right neighbour: lanes with lane==63 use 0.
    a.v_cmp(CmpOp::LtU, VReg(0), N - 1);
    a.v_add_u(t0, g4, 4u32);
    a.v_sel(t0, t0, g4);
    a.v_load(t2, t0, p_addr);
    a.v_sel(t2, t2, VOp::imm_f32(0.0));
    a.v_mul_f(ap, pv, VOp::imm_f32(DIAG));
    a.v_sub_f(ap, ap, t1);
    a.v_sub_f(ap, ap, t2);
    // pAp = p . Ap
    a.v_mov(pap, VOp::imm_f32(0.0));
    a.v_mul_f(t0, pv, ap);
    emit_wg_sum_f32(&mut a, "pap", red_addr, t0, pap, red_tmp, red_addr_v, s_red_i, s_red_a);
    // alpha = rs / pAp; x += alpha p; r -= alpha Ap.
    a.v_div_f(alpha, rs, pap);
    a.v_mul_f(t0, alpha, pv);
    a.v_add_f(xv, xv, t0);
    a.v_mul_f(t0, alpha, ap);
    a.v_sub_f(rv, rv, t0);
    // rsnew = r . r
    a.v_mov(rsnew, VOp::imm_f32(0.0));
    a.v_mul_f(t0, rv, rv);
    emit_wg_sum_f32(&mut a, "rsn", red_addr, t0, rsnew, red_tmp, red_addr_v, s_red_i, s_red_a);
    // beta = rsnew / rs; p = r + beta p; rs = rsnew.
    a.v_div_f(beta, rsnew, rs);
    a.v_mul_f(t0, beta, pv);
    a.v_add_f(t0, rv, t0);
    a.v_store(t0, g4, p_addr);
    a.v_mov(rs, rsnew);
    // Convergence: sample rsnew on lane 0 and exit early when tiny.
    a.v_read_lane(s_conv, rsnew, 0);
    a.s_cmp(CmpOp::LtF, s_conv, EPS.to_bits());
    a.branch_scc_nz("done");
    a.s_add(s_it, s_it, 1u32);
    a.s_cmp(CmpOp::LtU, s_it, MAX_ITERS);
    a.branch_scc_nz("cg");
    a.label("done");
    a.v_store(xv, g4, x_addr);
    a.end();

    Instance {
        name: "minife",
        program: a.finish().expect("valid kernel"),
        mem,
        workgroups: systems,
        check,
        meta: InstanceMeta { addrs: vec![("elem", elem_in), ("x", x_addr), ("b", b_addr)], n },
    }
}

/// Host CG replicating the kernel's operation order exactly.
fn reference(elem: &[f32], systems: usize) -> Vec<f32> {
    let n = N as usize;
    let mut xs = vec![0.0f32; systems * n];
    for s in 0..systems {
        // Assembly.
        let mut b = vec![0.0f32; n];
        for (i, bi) in b.iter_mut().enumerate() {
            let g = s * n + i;
            let mut acc = 0.0f32;
            for k in 0..4 {
                acc += elem[g * 4 + k] * 0.5;
            }
            *bi = acc;
        }
        // CG.
        let spmv = |p: &[f32]| -> Vec<f32> {
            (0..n)
                .map(|i| {
                    let l = if i >= 1 { p[i - 1] } else { 0.0 };
                    let r = if i < n - 1 { p[i + 1] } else { 0.0 };
                    p[i] * DIAG - l - r
                })
                .collect()
        };
        let dot = |a: &[f32], b: &[f32]| -> f32 {
            let mut acc = 0.0f32;
            for i in 0..n {
                acc += a[i] * b[i];
            }
            acc
        };
        let mut x = vec![0.0f32; n];
        let mut r = b.clone();
        let mut p = b.clone();
        let mut rs = dot(&r, &r);
        for _ in 0..MAX_ITERS {
            let ap = spmv(&p);
            let pap = dot(&p, &ap);
            let alpha = rs / pap;
            for i in 0..n {
                x[i] += alpha * p[i];
            }
            for i in 0..n {
                r[i] -= alpha * ap[i];
            }
            let rsnew = dot(&r, &r);
            let beta = rsnew / rs;
            for i in 0..n {
                p[i] = r[i] + beta * p[i];
            }
            rs = rsnew;
            if rsnew < EPS {
                break;
            }
        }
        xs[s * n..(s + 1) * n].copy_from_slice(&x);
    }
    xs
}

fn check(mem: &Memory, meta: &InstanceMeta) -> Result<(), String> {
    let n = meta.n;
    let elem = mem.read_f32_slice(meta.addr("elem"), n * 4);
    let x = mem.read_f32_slice(meta.addr("x"), n);
    let expected = reference(&elem, (n / N) as usize);
    // CG on a well-conditioned tridiagonal system: modest tolerance covers
    // any reduction-order rounding drift.
    check_f32(&x, &expected, 1e-4, "minife x")?;
    // And the solve must actually solve: residual check against A x = b.
    let b = mem.read_f32_slice(meta.addr("b"), n);
    for s in 0..(n / N) as usize {
        for i in 0..N as usize {
            let g = s * N as usize + i;
            let l = if i >= 1 { x[g - 1] } else { 0.0 };
            let r = if i < N as usize - 1 { x[g + 1] } else { 0.0 };
            let ax = x[g] * DIAG - l - r;
            if (ax - b[g]).abs() > 2e-2 * (1.0 + b[g].abs()) {
                return Err(format!("residual too large at {g}: Ax={ax} b={}", b[g]));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbavf_sim::interp::run_golden;

    #[test]
    fn minife_matches_host_reference() {
        let mut inst = build(Scale::Test);
        let p = inst.program.clone();
        let wgs = inst.workgroups;
        run_golden(&p, &mut inst.mem, wgs);
        inst.check(&inst.mem).unwrap();
    }
}
