//! A deliberately **lopsided** workload — the positive control for the
//! residency-weighted fault-site sampler.
//!
//! Every workgroup runs the same accumulation kernel, but workgroup `w`
//! iterates `(wgs - w)^3` times: with four workgroups the retirement split
//! is 64 : 27 : 8 : 1, so workgroup 0 retires roughly two-thirds of the
//! program's dynamic instructions. A sampler that is uniform *per
//! workgroup* (the retired v1 scheme) injects each workgroup equally and
//! therefore over-samples the nearly idle tail by an order of magnitude; a
//! sampler that is uniform *per retired instruction* must track this split.
//! The distribution-proportionality tests drive campaigns against this
//! workload and compare per-workgroup injection counts to the golden run's
//! per-workgroup retirement.
//!
//! Unlike [`nondet_drill`](super::nondet_drill) this workload is fully
//! deterministic — it is a valid injection target — but it is still a
//! drill: it is excluded from [`suite`](crate::suite) and only reachable
//! through [`lopsided_drill`](crate::lopsided_drill), because its only
//! purpose is to make sampling bias loud.

use crate::util::{check_u32, gen_u32};
use crate::{Instance, InstanceMeta, Scale};
use mbavf_sim::isa::{CmpOp, SReg, VReg};
use mbavf_sim::program::Assembler;
use mbavf_sim::Memory;

/// Build the workload. Deterministic: identical instances every call.
pub fn build(scale: Scale) -> Instance {
    let n: u32 = match scale {
        Scale::Test => 256,
        Scale::Paper => 512,
    };
    let wgs = n / 64;
    let input = gen_u32(0x10B5, n as usize);

    let mut mem = Memory::new(1 << 18);
    let in_addr = {
        let addr = mem.alloc_zeroed(n);
        for (i, v) in input.iter().enumerate() {
            mem.write_u32_host(addr + 4 * i as u32, *v);
        }
        addr
    };
    let out_addr = mem.alloc_zeroed(n);
    mem.mark_output(out_addr, n * 4);

    // out[i] = fold over (wgs - wg)^3 rounds of acc = acc * 3 + in[i].
    // The cubic round count is the whole point: it concentrates retirement
    // in the low workgroups while every lane still produces checked output.
    let mut a = Assembler::new();
    let (addr, val, acc) = (VReg(2), VReg(3), VReg(4));
    let (s_iters, s_i) = (SReg(2), SReg(3));
    a.v_mul_u(addr, VReg(1), 4u32);
    a.v_load(val, addr, in_addr);
    a.v_mov(acc, 0u32);
    a.s_sub(s_iters, SReg(1), SReg(0));
    a.s_mul(s_i, s_iters, s_iters);
    a.s_mul(s_iters, s_i, s_iters);
    a.s_mov(s_i, 0u32);
    a.label("round");
    a.v_mul_u(acc, acc, 3u32);
    a.v_add_u(acc, acc, val);
    a.s_add(s_i, s_i, 1u32);
    a.s_cmp(CmpOp::LtU, s_i, s_iters);
    a.branch_scc_nz("round");
    a.v_store(acc, addr, out_addr);
    a.end();

    Instance {
        name: "lopsided_drill",
        program: a.finish().expect("valid kernel"),
        mem,
        workgroups: wgs,
        check,
        meta: InstanceMeta { addrs: vec![("in", in_addr), ("out", out_addr)], n },
    }
}

/// Host reference: replay the per-workgroup round count exactly.
fn check(mem: &Memory, meta: &InstanceMeta) -> Result<(), String> {
    let input = mem.read_u32_slice(meta.addr("in"), meta.n);
    let out = mem.read_u32_slice(meta.addr("out"), meta.n);
    let wgs = meta.n / 64;
    let expected: Vec<u32> = input
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let rounds = (wgs - i as u32 / 64).pow(3);
            (0..rounds).fold(0u32, |acc, _| acc.wrapping_mul(3).wrapping_add(*v))
        })
        .collect();
    check_u32(&out, &expected, "lopsided_drill out")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbavf_sim::exec::{step, NullPorts, StepCtx, Wavefront};
    use mbavf_sim::interp::run_golden;

    #[test]
    fn kernel_matches_reference_at_both_scales() {
        for scale in [Scale::Test, Scale::Paper] {
            let mut inst = build(scale);
            let p = inst.program.clone();
            let wgs = inst.workgroups;
            run_golden(&p, &mut inst.mem, wgs);
            inst.check(&inst.mem).unwrap_or_else(|e| panic!("{scale:?}: {e}"));
        }
    }

    #[test]
    fn retirement_is_heavily_lopsided() {
        let mut inst = build(Scale::Test);
        let p = inst.program.clone();
        let wgs = inst.workgroups;
        let mut retired = Vec::new();
        for wg in 0..wgs {
            let mut wf = Wavefront::launch(&p, wg, 0, wgs);
            while !wf.done {
                let mut ctx =
                    StepCtx { mem: &mut inst.mem, trace: None, ports: &mut NullPorts, now: 0 };
                step(&mut wf, &p, &mut ctx);
            }
            retired.push(wf.retired);
        }
        assert_eq!(retired.len(), 4);
        assert!(
            retired[0] > 10 * retired[3],
            "workgroup 0 must dominate: per-wg retired {retired:?}"
        );
        let total: u64 = retired.iter().sum();
        assert!(
            retired[0] as f64 / total as f64 > 0.5,
            "workgroup 0 must retire the majority: {retired:?}"
        );
    }

    #[test]
    fn builds_are_deterministic() {
        let a = build(Scale::Test);
        let b = build(Scale::Test);
        assert_eq!(a.mem.bytes(), b.mem.bytes(), "a drill you can inject into must not drift");
    }
}
