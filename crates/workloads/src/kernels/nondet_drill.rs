//! A deliberately nondeterministic workload — the negative control for the
//! golden-run integrity gates.
//!
//! Every call to [`build`] perturbs one input word with a process-global
//! counter, so two "identical" instances produce different golden outputs.
//! Campaign and pipeline layers must *detect* this (their double-golden
//! digest check) and refuse to classify injections against it; a harness
//! that runs this workload without complaint has a hole in its integrity
//! gate. It is therefore excluded from [`suite`](crate::suite) and only
//! reachable through [`nondet_drill`](crate::nondet_drill).

use crate::util::{check_u32, gen_u32};
use crate::{Instance, InstanceMeta, Scale};
use mbavf_sim::isa::VReg;
use mbavf_sim::program::Assembler;
use mbavf_sim::Memory;
use std::sync::atomic::{AtomicU32, Ordering};

/// Monotone per-build drift: no two instances ever see the same input.
static DRIFT: AtomicU32 = AtomicU32::new(0);

/// Build the workload. **Each call yields a different instance.**
pub fn build(scale: Scale) -> Instance {
    let n: u32 = match scale {
        Scale::Test => 64,
        Scale::Paper => 256,
    };
    let mut input = gen_u32(0xD217, n as usize);
    let drift = DRIFT.fetch_add(1, Ordering::Relaxed);
    input[0] ^= drift.wrapping_mul(0x9E37_79B9) | 1;

    let mut mem = Memory::new(1 << 18);
    let in_addr = {
        let addr = mem.alloc_zeroed(n);
        for (i, v) in input.iter().enumerate() {
            mem.write_u32_host(addr + 4 * i as u32, *v);
        }
        addr
    };
    let out_addr = mem.alloc_zeroed(n);
    mem.mark_output(out_addr, n * 4);

    // out[i] = in[i] * 3 + 1 — trivial on purpose; the interesting part is
    // the drifting input, not the kernel.
    let mut a = Assembler::new();
    let (addr, val) = (VReg(2), VReg(3));
    a.v_mul_u(addr, VReg(1), 4u32);
    a.v_load(val, addr, in_addr);
    a.v_mul_u(val, val, 3u32);
    a.v_add_u(val, val, 1u32);
    a.v_store(val, addr, out_addr);
    a.end();

    Instance {
        name: "nondet_drill",
        program: a.finish().expect("valid kernel"),
        mem,
        workgroups: n / 64,
        check,
        meta: InstanceMeta { addrs: vec![("in", in_addr), ("out", out_addr)], n },
    }
}

/// Self-consistent check: the output must match *this instance's* input
/// (a fixed host reference is impossible — the input drifts by design).
fn check(mem: &Memory, meta: &InstanceMeta) -> Result<(), String> {
    let input = mem.read_u32_slice(meta.addr("in"), meta.n);
    let out = mem.read_u32_slice(meta.addr("out"), meta.n);
    let expected: Vec<u32> = input.iter().map(|v| v.wrapping_mul(3).wrapping_add(1)).collect();
    check_u32(&out, &expected, "nondet_drill out")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbavf_sim::interp::run_golden;

    #[test]
    fn each_build_gets_different_input() {
        let a = build(Scale::Test);
        let b = build(Scale::Test);
        assert_ne!(
            a.mem.read_u32(a.meta.addr("in")),
            b.mem.read_u32(b.meta.addr("in")),
            "two builds must never agree — that is the point of the drill"
        );
    }

    #[test]
    fn each_instance_is_self_consistent() {
        // Nondeterministic *across* builds, but any single instance runs
        // and checks fine — the drill is only detectable by comparing runs.
        let mut inst = build(Scale::Test);
        let p = inst.program.clone();
        let wgs = inst.workgroups;
        run_golden(&p, &mut inst.mem, wgs);
        inst.check(&inst.mem).unwrap();
    }
}
