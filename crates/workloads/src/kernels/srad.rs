//! SRAD-style anisotropic diffusion stencil (Rodinia `srad`).
//!
//! One lane per image row, sequential column loop; each update reads the
//! 4-neighbourhood, derives a diffusion coefficient, and writes the updated
//! pixel. A statistics side-channel (mean/variance accumulation weighted by
//! a table used only there) is stored to a never-read scratch buffer: dead
//! code whose share *grows* with fault-mode size in the paper's Figure 10
//! (srad: 29% false DUE single-bit, 50% at 4x1).

use crate::util::{check_f32, gen_f32};
use crate::{Instance, InstanceMeta, Scale};
use mbavf_sim::isa::{CmpOp, SReg, VOp, VReg};
use mbavf_sim::program::Assembler;
use mbavf_sim::Memory;

const W: u32 = 64;
const LAMBDA: f32 = 0.25;

/// Build the workload.
pub fn build(scale: Scale) -> Instance {
    let rows = match scale {
        Scale::Test => 64u32,
        Scale::Paper => 128,
    };
    let n = rows * W;
    let mut mem = Memory::new(1 << 20);
    let img: Vec<f32> = gen_f32(0xDD, n as usize).iter().map(|v| v * 255.0).collect();
    let weights = gen_f32(0xDE, W as usize);
    let in_addr = mem.alloc_f32(&img);
    let w_addr = mem.alloc_f32(&weights);
    let out_addr = mem.alloc_zeroed(n);
    let stats_addr = mem.alloc_zeroed(2 * rows); // dead sink
    mem.mark_output(out_addr, n * 4);

    let mut a = Assembler::new();
    let (rb, c4, center, nv, sv, ev, wv, lap, g2, cf, t, addr) = (
        VReg(2),
        VReg(3),
        VReg(4),
        VReg(5),
        VReg(6),
        VReg(7),
        VReg(8),
        VReg(9),
        VReg(10),
        VReg(11),
        VReg(12),
        VReg(13),
    );
    let (mean, var, wgt) = (VReg(14), VReg(15), VReg(16));
    let (s_c, s_c4) = (SReg(2), SReg(3));
    a.v_mul_u(rb, VReg(1), W * 4); // row base
    a.v_mov(mean, VOp::imm_f32(0.0));
    a.v_mov(var, VOp::imm_f32(0.0));
    a.s_mov(s_c, 0u32);
    a.label("col");
    a.s_mul(s_c4, s_c, 4u32);
    a.v_add_u(c4, rb, VOp::Sreg(s_c4));
    a.v_load(center, c4, in_addr);
    // North/South: rows clamp at the wavefront's edge lanes.
    a.v_cmp(CmpOp::GeU, VReg(0), 1u32);
    a.v_sub_u(addr, c4, W * 4);
    a.v_sel(addr, addr, c4);
    a.v_load(nv, addr, in_addr);
    a.v_cmp(CmpOp::LtU, VReg(0), 63u32);
    a.v_add_u(addr, c4, W * 4);
    a.v_sel(addr, addr, c4);
    a.v_load(sv, addr, in_addr);
    // East/West: the column clamp is a broadcast compare on the scalar
    // counter (scc is not readable by vector selects).
    a.v_cmp(CmpOp::GeU, VOp::Sreg(s_c), 1u32);
    a.v_sub_u(addr, c4, 4u32);
    a.v_sel(addr, addr, c4);
    a.v_load(wv, addr, in_addr);
    a.v_cmp(CmpOp::LtU, VOp::Sreg(s_c), W - 1);
    a.v_add_u(addr, c4, 4u32);
    a.v_sel(addr, addr, c4);
    a.v_load(ev, addr, in_addr);
    // Laplacian and gradient magnitude.
    a.v_add_f(lap, nv, sv);
    a.v_add_f(lap, lap, ev);
    a.v_add_f(lap, lap, wv);
    a.v_mul_f(t, center, VOp::imm_f32(4.0));
    a.v_sub_f(lap, lap, t);
    a.v_mul_f(g2, lap, lap);
    // cf = 1 / (1 + g2/4096), clamped to [0,1].
    a.v_mul_f(t, g2, VOp::imm_f32(1.0 / 4096.0));
    a.v_add_f(t, t, VOp::imm_f32(1.0));
    a.v_div_f(cf, VOp::imm_f32(1.0), t);
    a.v_min_f(cf, cf, VOp::imm_f32(1.0));
    a.v_max_f(cf, cf, VOp::imm_f32(0.0));
    // out = center + lambda * cf * lap
    a.v_mul_f(t, cf, lap);
    a.v_mul_f(t, t, VOp::imm_f32(LAMBDA));
    a.v_add_f(t, t, center);
    a.v_store(t, c4, out_addr);
    // Dead statistics: weight table read feeds only the dead sink.
    a.v_load(wgt, VOp::Sreg(s_c4), w_addr);
    a.v_mul_f(wgt, wgt, center);
    a.v_add_f(mean, mean, wgt);
    a.v_mul_f(t, center, center);
    a.v_add_f(var, var, t);
    a.s_add(s_c, s_c, 1u32);
    a.s_cmp(CmpOp::LtU, s_c, W);
    a.branch_scc_nz("col");
    // Store dead statistics (never read, not output).
    a.v_mul_u(addr, VReg(1), 8u32);
    a.v_store(mean, addr, stats_addr);
    a.v_store(var, addr, stats_addr + 4);
    a.end();

    Instance {
        name: "srad",
        program: a.finish().expect("valid kernel"),
        mem,
        workgroups: rows / 64,
        check,
        meta: InstanceMeta { addrs: vec![("in", in_addr), ("out", out_addr)], n },
    }
}

fn check(mem: &Memory, meta: &InstanceMeta) -> Result<(), String> {
    let n = meta.n;
    let img = mem.read_f32_slice(meta.addr("in"), n);
    let out = mem.read_f32_slice(meta.addr("out"), n);
    let w = W as usize;
    let rows = n as usize / w;
    let mut expected = vec![0.0f32; n as usize];
    for r in 0..rows {
        let lane = r % 64;
        for c in 0..w {
            let at = |rr: usize, cc: usize| img[rr * w + cc];
            let nv = if lane >= 1 { at(r - 1, c) } else { at(r, c) };
            let sv = if lane < 63 { at(r + 1, c) } else { at(r, c) };
            let wv = if c >= 1 { at(r, c - 1) } else { at(r, c) };
            let ev = if c < w - 1 { at(r, c + 1) } else { at(r, c) };
            let center = at(r, c);
            let lap = ((nv + sv) + ev) + wv - center * 4.0;
            let g2 = lap * lap;
            let cf = (1.0 / (g2 * (1.0 / 4096.0) + 1.0)).clamp(0.0, 1.0);
            expected[r * w + c] = cf * lap * LAMBDA + center;
        }
    }
    check_f32(&out, &expected, 1e-4, "srad out")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbavf_sim::interp::run_golden;

    #[test]
    fn srad_matches_host_reference() {
        let mut inst = build(Scale::Test);
        let p = inst.program.clone();
        let wgs = inst.workgroups;
        run_golden(&p, &mut inst.mem, wgs);
        inst.check(&inst.mem).unwrap();
    }
}
