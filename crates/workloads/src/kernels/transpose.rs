//! Matrix transpose (AMD APP `MatrixTranspose`).
//!
//! `out[c][r] = in[r][c]` for a 64×64 u32 matrix: one workgroup per row.
//! Loads are coalesced; stores stride by a full row, scattering across cache
//! indices — the strided pattern that makes index-physical interleaving
//! behave differently from way-physical (Section VI-B).

use crate::util::{check_u32, gen_u32};
use crate::{Instance, InstanceMeta, Scale};
use mbavf_sim::isa::{SReg, VReg};
use mbavf_sim::program::Assembler;
use mbavf_sim::Memory;

const N: u32 = 64;

/// Build the workload.
pub fn build(scale: Scale) -> Instance {
    let rows = match scale {
        Scale::Test => 16,
        Scale::Paper => N,
    };
    let mut mem = Memory::new(1 << 20);
    let input = gen_u32(0x33, (N * N) as usize);
    let in_addr = mem.alloc_u32(&input);
    let out_addr = mem.alloc_zeroed(N * N);
    mem.mark_output(out_addr, N * N * 4);
    // Transposing only `rows` rows leaves other output columns zero; the
    // checker accounts for that.

    let mut a = Assembler::new();
    let (col4, val, oaddr) = (VReg(2), VReg(3), VReg(4));
    let s_row = SReg(2);
    a.v_mul_u(col4, VReg(0), 4u32);
    a.s_mul(s_row, SReg(0), N * 4);
    a.v_add_u(val, col4, s_row);
    a.v_load(val, val, in_addr); // in[r*N + c]
                                 // out[c*N + r]
    a.v_mul_u(oaddr, VReg(0), N * 4);
    a.s_mul(SReg(3), SReg(0), 4u32);
    a.v_add_u(oaddr, oaddr, SReg(3));
    a.v_store(val, oaddr, out_addr);
    a.end();

    Instance {
        name: "transpose",
        program: a.finish().expect("valid kernel"),
        mem,
        workgroups: rows,
        check,
        meta: InstanceMeta { addrs: vec![("in", in_addr), ("out", out_addr)], n: rows },
    }
}

fn check(mem: &Memory, meta: &InstanceMeta) -> Result<(), String> {
    let rows = meta.n as usize;
    let input = mem.read_u32_slice(meta.addr("in"), N * N);
    let out = mem.read_u32_slice(meta.addr("out"), N * N);
    let mut expected = vec![0u32; (N * N) as usize];
    for r in 0..rows {
        for c in 0..N as usize {
            expected[c * N as usize + r] = input[r * N as usize + c];
        }
    }
    check_u32(&out, &expected, "transpose out")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbavf_sim::interp::run_golden;

    #[test]
    fn transpose_matches_host_reference() {
        let mut inst = build(Scale::Test);
        let p = inst.program.clone();
        let wgs = inst.workgroups;
        run_golden(&p, &mut inst.mem, wgs);
        inst.check(&inst.mem).unwrap();
    }
}
