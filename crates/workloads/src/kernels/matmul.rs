//! Dense matrix multiply (AMD APP `MatrixMultiplication`).
//!
//! `C = A × B` for `n × n` single-precision matrices with `n = 64`: one
//! workgroup per row, one lane per column. `A[r][k]` is broadcast to the
//! wavefront; `B[k][*]` loads are fully coalesced — high L1 reuse.

use crate::util::{check_f32, gen_f32};
use crate::{Instance, InstanceMeta, Scale};
use mbavf_sim::isa::{CmpOp, SReg, VOp, VReg};
use mbavf_sim::program::Assembler;
use mbavf_sim::Memory;

const N: u32 = 64;

/// Build the workload.
pub fn build(scale: Scale) -> Instance {
    // Same matrix size at both scales (lanes pin n = 64); test scale only
    // computes the first 16 rows.
    let rows = match scale {
        Scale::Test => 16,
        Scale::Paper => N,
    };
    let mut mem = Memory::new(1 << 20);
    let a_data = gen_f32(0x11, (N * N) as usize);
    let b_data = gen_f32(0x22, (N * N) as usize);
    let a_addr = mem.alloc_f32(&a_data);
    let b_addr = mem.alloc_f32(&b_data);
    let c_addr = mem.alloc_zeroed(N * rows);
    mem.mark_output(c_addr, N * rows * 4);

    let mut a = Assembler::new();
    let (col4, acc, va, vb, tmp, caddr) = (VReg(2), VReg(3), VReg(4), VReg(5), VReg(6), VReg(7));
    let (s_k, s_arow, s_aaddr, s_brow) = (SReg(2), SReg(3), SReg(4), SReg(5));
    a.v_mul_u(col4, VReg(0), 4u32); // column byte offset
    a.v_mov(acc, VOp::imm_f32(0.0));
    a.s_mul(s_arow, SReg(0), N * 4); // row r byte offset into A
    a.s_mov(s_k, 0u32);
    a.label("k");
    // A[r][k], broadcast.
    a.s_mul(s_aaddr, s_k, 4u32);
    a.s_add(s_aaddr, s_aaddr, s_arow);
    a.v_load(va, s_aaddr, a_addr);
    // B[k][c], coalesced.
    a.s_mul(s_brow, s_k, N * 4);
    a.v_add_u(vb, col4, VOp::Sreg(s_brow));
    a.v_load(vb, vb, b_addr);
    a.v_mul_f(tmp, va, vb);
    a.v_add_f(acc, acc, tmp);
    a.s_add(s_k, s_k, 1u32);
    a.s_cmp(CmpOp::LtU, s_k, N);
    a.branch_scc_nz("k");
    // C[r][c]
    a.v_add_u(caddr, col4, VOp::Sreg(s_arow));
    a.v_store(acc, caddr, c_addr);
    a.end();

    Instance {
        name: "matmul",
        program: a.finish().expect("valid kernel"),
        mem,
        workgroups: rows,
        check,
        meta: InstanceMeta { addrs: vec![("a", a_addr), ("b", b_addr), ("c", c_addr)], n: rows },
    }
}

fn check(mem: &Memory, meta: &InstanceMeta) -> Result<(), String> {
    let rows = meta.n;
    let a = mem.read_f32_slice(meta.addr("a"), N * N);
    let b = mem.read_f32_slice(meta.addr("b"), N * N);
    let c = mem.read_f32_slice(meta.addr("c"), N * rows);
    let mut expected = vec![0.0f32; (N * rows) as usize];
    for r in 0..rows as usize {
        for col in 0..N as usize {
            // Accumulate in the same order as the kernel for bit fidelity.
            let mut acc = 0.0f32;
            for k in 0..N as usize {
                acc += a[r * N as usize + k] * b[k * N as usize + col];
            }
            expected[r * N as usize + col] = acc;
        }
    }
    check_f32(&c, &expected, 1e-6, "matmul C")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbavf_sim::interp::run_golden;

    #[test]
    fn matmul_matches_host_reference() {
        let mut inst = build(Scale::Test);
        let p = inst.program.clone();
        let wgs = inst.workgroups;
        run_golden(&p, &mut inst.mem, wgs);
        inst.check(&inst.mem).unwrap();
    }
}
