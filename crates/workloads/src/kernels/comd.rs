//! CoMD-style Lennard-Jones force loop (Mantevo `CoMD`).
//!
//! Each atom accumulates pair forces from a fixed neighbour window. The
//! kernel also accumulates a **potential-energy diagnostic** that loads a
//! per-atom mass table used nowhere else and is written to a scratch buffer
//! that is never read — first-level and transitively dead code whose cache
//! lines are read only by dead instructions. This reproduces CoMD's
//! standout false-DUE behaviour in the paper's Figure 10 (41% of its
//! single-bit DUE AVF is false DUE).

use crate::util::{check_f32, gen_f32};
use crate::{Instance, InstanceMeta, Scale};
use mbavf_sim::isa::{CmpOp, VOp, VReg};
use mbavf_sim::program::Assembler;
use mbavf_sim::Memory;

const NEIGHBOURS: [i32; 8] = [-4, -3, -2, -1, 1, 2, 3, 4];

/// Build the workload.
pub fn build(scale: Scale) -> Instance {
    let atoms = match scale {
        Scale::Test => 64u32,
        Scale::Paper => 256,
    };
    let mut mem = Memory::new(1 << 20);
    // Positions roughly on a jittered 1-D lattice.
    let pos: Vec<f32> =
        gen_f32(0xCC, atoms as usize).iter().enumerate().map(|(i, r)| i as f32 + 0.3 * r).collect();
    let mass: Vec<f32> = gen_f32(0xCD, atoms as usize).iter().map(|r| 1.0 + r).collect();
    let pos_addr = mem.alloc_f32(&pos);
    let mass_addr = mem.alloc_f32(&mass);
    let force_addr = mem.alloc_zeroed(atoms);
    let energy_addr = mem.alloc_zeroed(atoms); // dead diagnostic sink
    mem.mark_output(force_addr, atoms * 4);

    let mut a = Assembler::new();
    let (g4, xi, xj, dx, r2, inv2, inv6, t, fterm, facc, eacc, jaddr) = (
        VReg(2),
        VReg(3),
        VReg(4),
        VReg(5),
        VReg(6),
        VReg(7),
        VReg(8),
        VReg(9),
        VReg(10),
        VReg(11),
        VReg(12),
        VReg(13),
    );
    let mj = VReg(14);
    a.v_mul_u(g4, VReg(1), 4u32);
    a.v_load(xi, g4, pos_addr);
    a.v_mov(facc, VOp::imm_f32(0.0));
    a.v_mov(eacc, VOp::imm_f32(0.0));
    for &o in NEIGHBOURS.iter() {
        // j = i + o clamped into this wavefront's atom block; out-of-range
        // lanes contribute zero through the select below.
        let in_range = |a: &mut Assembler| {
            if o < 0 {
                a.v_cmp(CmpOp::GeU, VReg(0), (-o) as u32);
            } else {
                a.v_cmp(CmpOp::LtU, VReg(0), 64 - o as u32);
            }
        };
        in_range(&mut a);
        if o < 0 {
            a.v_sub_u(jaddr, g4, (4 * -o) as u32);
        } else {
            a.v_add_u(jaddr, g4, (4 * o) as u32);
        }
        a.v_sel(jaddr, jaddr, g4); // clamp to self when out of range
        a.v_load(xj, jaddr, pos_addr);
        a.v_sub_f(dx, xi, xj);
        a.v_mul_f(r2, dx, dx);
        a.v_add_f(r2, r2, VOp::imm_f32(0.01)); // softening
        a.v_div_f(inv2, VOp::imm_f32(1.0), r2);
        a.v_mul_f(inv6, inv2, inv2);
        a.v_mul_f(inv6, inv6, inv2);
        // f = (inv6^2 - 0.5 inv6) * dx
        a.v_mul_f(t, inv6, inv6);
        a.v_mul_f(fterm, inv6, VOp::imm_f32(0.5));
        a.v_sub_f(t, t, fterm);
        a.v_mul_f(t, t, dx);
        in_range(&mut a); // re-establish the mask (v_div etc. left VCC alone,
                          // but the explicit re-compare keeps intent clear)
        a.v_sel(t, t, VOp::imm_f32(0.0));
        a.v_add_f(facc, facc, t);
        // Dead energy diagnostic: loads the mass table (used only here).
        a.v_load(mj, jaddr, mass_addr);
        a.v_mul_f(mj, mj, inv6);
        a.v_add_f(eacc, eacc, mj);
    }
    a.v_store(facc, g4, force_addr);
    a.v_store(eacc, g4, energy_addr); // never read, not an output: dead
    a.end();

    Instance {
        name: "comd",
        program: a.finish().expect("valid kernel"),
        mem,
        workgroups: atoms / 64,
        check,
        meta: InstanceMeta { addrs: vec![("pos", pos_addr), ("force", force_addr)], n: atoms },
    }
}

fn check(mem: &Memory, meta: &InstanceMeta) -> Result<(), String> {
    let atoms = meta.n;
    let pos = mem.read_f32_slice(meta.addr("pos"), atoms);
    let force = mem.read_f32_slice(meta.addr("force"), atoms);
    let mut expected = vec![0.0f32; atoms as usize];
    for i in 0..atoms as usize {
        let lane = i % 64;
        let mut facc = 0.0f32;
        for &o in &NEIGHBOURS {
            let in_range = if o < 0 { lane as i32 >= -o } else { (lane as i32) < 64 - o };
            let j = if in_range { (i as i32 + o) as usize } else { i };
            let dx = pos[i] - pos[j];
            let r2 = dx * dx + 0.01;
            let inv2 = 1.0 / r2;
            let inv6 = inv2 * inv2 * inv2;
            let t = (inv6 * inv6 - inv6 * 0.5) * dx;
            facc += if in_range { t } else { 0.0 };
        }
        expected[i] = facc;
    }
    check_f32(&force, &expected, 1e-4, "comd force")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbavf_sim::interp::run_golden;

    #[test]
    fn comd_matches_host_reference() {
        let mut inst = build(Scale::Test);
        let p = inst.program.clone();
        let wgs = inst.workgroups;
        run_golden(&p, &mut inst.mem, wgs);
        inst.check(&inst.mem).unwrap();
    }

    #[test]
    fn comd_has_dead_energy_path() {
        use mbavf_sim::exec::{step, NullPorts, StepCtx, Wavefront};
        use mbavf_sim::liveness::analyze;
        use mbavf_sim::trace::Trace;
        let mut inst = build(Scale::Test);
        let program = inst.program.clone();
        let mut trace = Trace::new();
        for wg in 0..inst.workgroups {
            let mut wf = Wavefront::launch(&program, wg, 0, inst.workgroups);
            let mut ports = NullPorts;
            while !wf.done {
                let mut ctx = StepCtx {
                    mem: &mut inst.mem,
                    trace: Some(&mut trace),
                    ports: &mut ports,
                    now: 0,
                };
                step(&mut wf, &program, &mut ctx);
            }
        }
        let lv = analyze(&trace, &inst.mem);
        let dead = 1.0 - lv.live_fraction();
        assert!(dead > 0.15, "energy diagnostics must be dead, dead fraction {dead}");
    }
}
