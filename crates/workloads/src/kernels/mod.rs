//! The kernel implementations, one module per workload.

pub mod comd;
pub mod dct;
pub mod dwt_haar;
pub mod fast_walsh;
pub mod histogram;
pub mod lopsided_drill;
pub mod matmul;
pub mod minife;
pub mod nondet_drill;
pub mod pathfinder;
pub mod prefix_sum;
pub mod recursive_gaussian;
pub mod scan_large;
pub mod srad;
pub mod transpose;
