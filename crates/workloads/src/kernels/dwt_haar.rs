//! 1-D Haar wavelet transform (AMD APP `DwtHaar1D`).
//!
//! Three decomposition levels over each 64-element block. At level `L` only
//! the first `32 >> L` lanes produce coefficients; inactive lanes are
//! steered to a per-lane scratch slot with a selected address (the
//! predication-by-address idiom; contrast `pathfinder`, which uses EXEC
//! masking), so their stores are architecturally dead — a natural source of
//! dynamically dead code.

use crate::util::{check_f32, gen_f32};
use crate::{Instance, InstanceMeta, Scale};
use mbavf_sim::isa::{CmpOp, SReg, VOp, VReg};
use mbavf_sim::program::Assembler;
use mbavf_sim::Memory;

const C: f32 = std::f32::consts::FRAC_1_SQRT_2;

/// Build the workload.
pub fn build(scale: Scale) -> Instance {
    let n = match scale {
        Scale::Test => 128u32,
        Scale::Paper => 512,
    };
    let mut mem = Memory::new(1 << 20);
    let input = gen_f32(0x88, n as usize);
    let work_addr = mem.alloc_f32(&input); // transformed in place per block
    let out_addr = mem.alloc_zeroed(n);
    let scratch_addr = mem.alloc_zeroed(n); // dead-store target for idle lanes
    mem.mark_output(out_addr, n * 4);

    let mut a = Assembler::new();
    let (va, vb, approx, detail, aaddr, daddr, sc4) =
        (VReg(2), VReg(3), VReg(4), VReg(5), VReg(6), VReg(7), VReg(8));
    let (lane4, lane8) = (VReg(9), VReg(10));
    let s_base = SReg(2);
    a.s_mul(s_base, SReg(0), 256u32); // this block's byte base
    a.v_mul_u(lane4, VReg(0), 4u32);
    a.v_mul_u(lane8, VReg(0), 8u32);
    a.v_mul_u(sc4, VReg(1), 4u32); // global per-lane scratch slot
                                   // Detail regions within out: level 0 -> [32..64), 1 -> [16..32),
                                   // 2 -> [8..16); final approx -> [0..8).
    for (_level, h) in [(0u32, 32u32), (1, 16), (2, 8)] {
        // a = W[2*lane], b = W[2*lane+1]
        a.v_add_u(va, lane8, s_base);
        a.v_load(vb, va, work_addr + 4);
        a.v_load(va, va, work_addr);
        a.v_add_f(approx, va, vb);
        a.v_mul_f(approx, approx, VOp::imm_f32(C));
        a.v_sub_f(detail, va, vb);
        a.v_mul_f(detail, detail, VOp::imm_f32(C));
        // Active lanes: lane < h.
        a.v_cmp(CmpOp::LtU, VReg(0), h);
        // approx -> W[lane] (next level input), inactive -> scratch.
        a.v_add_u(aaddr, lane4, s_base);
        a.v_add_u(aaddr, aaddr, work_addr);
        a.v_add_u(va, sc4, scratch_addr);
        a.v_sel(aaddr, aaddr, va);
        a.v_store(approx, aaddr, 0);
        // detail -> out[h + lane], inactive -> scratch.
        a.v_add_u(daddr, lane4, s_base);
        a.v_add_u(daddr, daddr, out_addr + h * 4);
        a.v_sel(daddr, daddr, va);
        a.v_store(detail, daddr, 0);
    }
    // Final approx (8 values) -> out[0..8).
    a.v_cmp(CmpOp::LtU, VReg(0), 8u32);
    a.v_add_u(va, lane4, s_base);
    a.v_load(vb, va, work_addr);
    a.v_add_u(aaddr, va, out_addr);
    a.v_add_u(daddr, sc4, scratch_addr);
    a.v_sel(aaddr, aaddr, daddr);
    a.v_store(vb, aaddr, 0);
    a.end();

    Instance {
        name: "dwt_haar",
        program: a.finish().expect("valid kernel"),
        mem,
        workgroups: n / 64,
        check,
        meta: InstanceMeta { addrs: vec![("out", out_addr)], n },
    }
}

fn check(mem: &Memory, meta: &InstanceMeta) -> Result<(), String> {
    let n = meta.n;
    let out = mem.read_f32_slice(meta.addr("out"), n);
    let input = gen_f32(0x88, n as usize);
    let mut expected = vec![0.0f32; n as usize];
    for (bi, block) in input.chunks(64).enumerate() {
        let mut w = block.to_vec();
        let o = &mut expected[bi * 64..(bi + 1) * 64];
        for h in [32usize, 16, 8] {
            for i in 0..h {
                let (x, y) = (w[2 * i], w[2 * i + 1]);
                let approx = (x + y) * C;
                o[h + i] = (x - y) * C;
                w[i] = approx;
            }
        }
        o[..8].copy_from_slice(&w[..8]);
    }
    check_f32(&out, &expected, 1e-6, "dwt_haar")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbavf_sim::interp::run_golden;

    #[test]
    fn dwt_haar_matches_host_reference() {
        let mut inst = build(Scale::Test);
        let p = inst.program.clone();
        let wgs = inst.workgroups;
        run_golden(&p, &mut inst.mem, wgs);
        inst.check(&inst.mem).unwrap();
    }
}
