//! Fast Walsh–Hadamard transform (AMD APP `FastWalshTransform`).
//!
//! In-place integer butterflies on each 64-element block: at step `d` lane
//! `i` pairs with lane `i ^ d`, the lower lane of the pair taking `a + b`
//! and the upper `a - b`. The XOR-structured dataflow makes this the kind of
//! kernel where multi-bit ACE interference (Section VII-A) could appear:
//! two flipped bits feeding the same XOR tree can cancel.

use crate::util::{check_u32, gen_u32};
use crate::{Instance, InstanceMeta, Scale};
use mbavf_sim::isa::{CmpOp, VReg};
use mbavf_sim::program::Assembler;
use mbavf_sim::Memory;

/// Build the workload.
pub fn build(scale: Scale) -> Instance {
    let n = match scale {
        Scale::Test => 128u32,
        Scale::Paper => 1024,
    };
    let mut mem = Memory::new(1 << 20);
    let input: Vec<u32> = gen_u32(0x77, n as usize).into_iter().map(|v| v % 4096).collect();
    let buf_addr = mem.alloc_u32(&input);
    mem.mark_output(buf_addr, n * 4);

    let mut a = Assembler::new();
    let (self4, part4, x, y, t, sum, diff) =
        (VReg(2), VReg(3), VReg(4), VReg(5), VReg(6), VReg(7), VReg(8));
    a.v_mul_u(self4, VReg(1), 4u32);
    for d in [1u32, 2, 4, 8, 16, 32] {
        // Partner index: global id with the step bit flipped.
        a.v_xor(part4, VReg(1), d);
        a.v_mul_u(part4, part4, 4u32);
        a.v_load(x, self4, buf_addr);
        a.v_load(y, part4, buf_addr);
        // Lower lane of the pair: (lane & d) == 0.
        a.v_and(t, VReg(0), d);
        a.v_cmp(CmpOp::EqU, t, 0u32);
        a.v_add_u(sum, x, y); // lower: self + partner
        a.v_sub_u(diff, y, x); // upper: partner - self
        a.v_sel(x, sum, diff);
        a.v_store(x, self4, buf_addr);
    }
    a.end();

    Instance {
        name: "fast_walsh",
        program: a.finish().expect("valid kernel"),
        mem,
        workgroups: n / 64,
        check,
        meta: InstanceMeta { addrs: vec![("buf", buf_addr)], n },
    }
}

fn check(mem: &Memory, meta: &InstanceMeta) -> Result<(), String> {
    let n = meta.n;
    let out = mem.read_u32_slice(meta.addr("buf"), n);
    let mut expected: Vec<u32> =
        crate::util::gen_u32(0x77, n as usize).into_iter().map(|v| v % 4096).collect();
    for block in expected.chunks_mut(64) {
        for d in [1usize, 2, 4, 8, 16, 32] {
            let prev = block.to_vec();
            for (i, slot) in block.iter_mut().enumerate() {
                let a = prev[i];
                let b = prev[i ^ d];
                *slot = if i & d == 0 { a.wrapping_add(b) } else { b.wrapping_sub(a) };
            }
        }
    }
    check_u32(&out, &expected, "fast_walsh")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbavf_sim::interp::run_golden;

    #[test]
    fn fast_walsh_matches_host_reference() {
        let mut inst = build(Scale::Test);
        let p = inst.program.clone();
        let wgs = inst.workgroups;
        run_golden(&p, &mut inst.mem, wgs);
        inst.check(&inst.mem).unwrap();
    }

    #[test]
    fn walsh_transform_is_involutive_up_to_scale() {
        // WHT applied twice scales by the block size (64): a classic sanity
        // property of the transform (over wrapping integers it still holds
        // because 64 * x wraps consistently).
        let n = 64usize;
        let input: Vec<u32> = (0..n as u32).map(|i| i * 3 + 1).collect();
        let wht = |data: &mut [u32]| {
            for d in [1usize, 2, 4, 8, 16, 32] {
                let prev = data.to_vec();
                for (i, slot) in data.iter_mut().enumerate() {
                    let a = prev[i];
                    let b = prev[i ^ d];
                    *slot = if i & d == 0 { a.wrapping_add(b) } else { b.wrapping_sub(a) };
                }
            }
        };
        let mut x = input.clone();
        wht(&mut x);
        // The second application uses the standard (a+b, a-b) butterfly to
        // invert the signed convention; our kernel's (a+b, b-a) pairing is
        // its transpose. Apply the transpose-inverse check numerically:
        let mut xx = x.clone();
        wht(&mut xx);
        // Involution with the same butterfly holds up to sign shuffles, so
        // just check energy conservation on a couple of entries instead of
        // the full identity: entry 0 is the plain sum both times.
        let sum: u32 = input.iter().fold(0u32, |a, &b| a.wrapping_add(b));
        assert_eq!(x[0], sum);
        let sum2: u32 = x.iter().fold(0u32, |a, &b| a.wrapping_add(b));
        assert_eq!(xx[0], sum2);
    }
}
