//! Pathfinder-style dynamic programming (Rodinia `pathfinder`) with
//! data-dependent EXEC-mask divergence.
//!
//! Row by row, each lane extends the cheapest path through a cost grid:
//! `dp[c] = wall[r][c] + min(dp[c-1], dp[c], dp[c+1])`. Cells whose wall
//! cost exceeds a threshold are *blocked*: those lanes take the else-branch
//! (keep the old path cost plus a penalty) under an inverted EXEC mask —
//! real GCN-style divergence, so different lanes' registers carry live
//! values through different code paths.

use crate::util::{check_f32, gen_f32};
use crate::{Instance, InstanceMeta, Scale};
use mbavf_sim::isa::{CmpOp, ExecOp, SReg, VOp, VReg};
use mbavf_sim::program::Assembler;
use mbavf_sim::Memory;

const COLS: u32 = 64;
const THRESH: f32 = 0.75;
const PENALTY: f32 = 4.0;

/// Build the workload.
pub fn build(scale: Scale) -> Instance {
    let (rows, grids) = match scale {
        Scale::Test => (16u32, 1u32),
        Scale::Paper => (48, 2),
    };
    let n = rows * COLS * grids;
    let mut mem = Memory::new(1 << 20);
    let wall = gen_f32(0xEE, n as usize);
    let wall_addr = mem.alloc_f32(&wall);
    let dp_addr = mem.alloc_zeroed(COLS * grids); // per-grid dp row
    let out_addr = mem.alloc_zeroed(COLS * grids);
    mem.mark_output(out_addr, COLS * grids * 4);

    let mut a = Assembler::new();
    let (g4, lane4, dp, wl, dl, dr, m, addr, cand) =
        (VReg(2), VReg(3), VReg(4), VReg(5), VReg(6), VReg(7), VReg(8), VReg(9), VReg(10));
    let (s_r, s_off) = (SReg(2), SReg(3));
    a.v_mul_u(g4, VReg(1), 4u32); // global dp slot
    a.v_mul_u(lane4, VReg(0), 4u32);
    // dp = wall[row 0]: this grid's block starts at wg * rows * 256.
    a.s_mul(s_off, SReg(0), rows * COLS * 4);
    a.v_add_u(addr, lane4, VOp::Sreg(s_off));
    a.v_load(dp, addr, wall_addr);
    a.v_store(dp, g4, dp_addr);
    a.s_mov(s_r, 1u32);
    a.label("row");
    // wall[r][c]
    a.s_mul(s_off, s_r, COLS * 4);
    a.v_add_u(addr, lane4, VOp::Sreg(s_off));
    a.s_mul(s_off, SReg(0), rows * COLS * 4);
    a.v_add_u(addr, addr, VOp::Sreg(s_off));
    a.v_load(wl, addr, wall_addr);
    // Neighbours of the previous dp row (clamped at the grid edge).
    a.v_cmp(CmpOp::GeU, VReg(0), 1u32);
    a.v_sub_u(addr, g4, 4u32);
    a.v_sel(addr, addr, g4);
    a.v_load(dl, addr, dp_addr);
    a.v_cmp(CmpOp::LtU, VReg(0), COLS - 1);
    a.v_add_u(addr, g4, 4u32);
    a.v_sel(addr, addr, g4);
    a.v_load(dr, addr, dp_addr);
    a.v_min_f(m, dl, dr);
    a.v_min_f(m, m, dp);
    a.v_add_f(cand, wl, m);
    // Divergence: open cells extend the path, blocked cells pay a penalty.
    a.v_cmp(CmpOp::LtF, wl, VOp::imm_f32(THRESH));
    a.s_set_exec(ExecOp::Vcc);
    a.v_mov(dp, cand);
    a.s_set_exec(ExecOp::NotVcc);
    a.v_add_f(dp, dp, VOp::imm_f32(PENALTY));
    a.s_set_exec(ExecOp::All);
    a.v_store(dp, g4, dp_addr);
    a.s_add(s_r, s_r, 1u32);
    a.s_cmp(CmpOp::LtU, s_r, rows);
    a.branch_scc_nz("row");
    a.v_store(dp, g4, out_addr);
    a.end();

    Instance {
        name: "pathfinder",
        program: a.finish().expect("valid kernel"),
        mem,
        workgroups: grids,
        check,
        meta: InstanceMeta { addrs: vec![("wall", wall_addr), ("out", out_addr)], n: rows * grids },
    }
}

fn check(mem: &Memory, meta: &InstanceMeta) -> Result<(), String> {
    // meta.n = rows * grids; out has COLS entries per grid.
    let rows_total = meta.n;
    let out_len = mem.outputs()[0].len() as u32 / 4;
    let grids = out_len / COLS;
    let rows = rows_total / grids;
    let wall = mem.read_f32_slice(meta.addr("wall"), rows * COLS * grids);
    let out = mem.read_f32_slice(meta.addr("out"), COLS * grids);
    let mut expected = vec![0.0f32; (COLS * grids) as usize];
    for g in 0..grids as usize {
        let base = g * (rows * COLS) as usize;
        let mut dp: Vec<f32> = wall[base..base + COLS as usize].to_vec();
        for r in 1..rows as usize {
            let prev = dp.clone();
            for c in 0..COLS as usize {
                let wl = wall[base + r * COLS as usize + c];
                let dl = prev[c.saturating_sub(1)];
                let dr = prev[(c + 1).min(COLS as usize - 1)];
                let m = dl.min(dr).min(prev[c]);
                if wl < THRESH {
                    dp[c] = wl + m;
                } else {
                    dp[c] = prev[c] + PENALTY;
                }
            }
        }
        expected[g * COLS as usize..(g + 1) * COLS as usize].copy_from_slice(&dp);
    }
    check_f32(&out, &expected, 1e-4, "pathfinder out")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbavf_sim::interp::run_golden;

    #[test]
    fn pathfinder_matches_host_reference() {
        let mut inst = build(Scale::Test);
        let p = inst.program.clone();
        let wgs = inst.workgroups;
        run_golden(&p, &mut inst.mem, wgs);
        inst.check(&inst.mem).unwrap();
    }

    #[test]
    fn both_branches_are_exercised() {
        // With uniform [0,1) wall costs and THRESH = 0.75, both the open and
        // the blocked path must occur.
        let inst = build(Scale::Test);
        let wall = inst.mem.read_f32_slice(inst.meta.addr("wall"), 16 * COLS);
        assert!(wall.iter().any(|&w| w < THRESH));
        assert!(wall.iter().any(|&w| w >= THRESH));
    }
}
