//! Byte histogram (AMD APP `Histogram`).
//!
//! Bin-per-lane formulation: lane `l` of workgroup `w` owns bin `w*64 + l`
//! and scans the whole input counting matches. Exercises byte-granularity
//! loads (the cache allows byte reads, Section VI-A) with extreme L1 reuse.

use crate::util::{check_u32, gen_bytes};
use crate::{Instance, InstanceMeta, Scale};
use mbavf_sim::isa::{CmpOp, SReg, VOp, VReg};
use mbavf_sim::program::Assembler;
use mbavf_sim::Memory;

/// Build the workload.
pub fn build(scale: Scale) -> Instance {
    let (n, bins) = match scale {
        Scale::Test => (512u32, 64u32),
        Scale::Paper => (2048, 256),
    };
    let mut mem = Memory::new(1 << 20);
    // Bias values into the bin range so most bins are nonzero.
    let data: Vec<u8> =
        gen_bytes(0x44, n as usize).into_iter().map(|b| b % (bins as u8).max(64)).collect();
    let in_addr = mem.alloc(n);
    for (i, &b) in data.iter().enumerate() {
        mem.store(in_addr + i as u32, 1, u32::from(b), u32::MAX);
    }
    let hist_addr = mem.alloc_zeroed(bins);
    mem.mark_output(hist_addr, bins * 4);

    let mut a = Assembler::new();
    let (bin, count, val, inc, haddr) = (VReg(2), VReg(3), VReg(4), VReg(5), VReg(6));
    let s_i = SReg(2);
    a.v_mov(bin, VReg(1)); // bin id = global id
    a.v_mov(count, 0u32);
    a.s_mov(s_i, 0u32);
    a.label("scan");
    a.v_load_byte(val, VOp::Sreg(s_i), in_addr); // broadcast byte
    a.v_cmp(CmpOp::EqU, val, bin);
    a.v_sel(inc, 1u32, 0u32);
    a.v_add_u(count, count, inc);
    a.s_add(s_i, s_i, 1u32);
    a.s_cmp(CmpOp::LtU, s_i, n);
    a.branch_scc_nz("scan");
    a.v_mul_u(haddr, VReg(1), 4u32);
    a.v_store(count, haddr, hist_addr);
    a.end();

    Instance {
        name: "histogram",
        program: a.finish().expect("valid kernel"),
        mem,
        workgroups: bins / 64,
        check,
        meta: InstanceMeta { addrs: vec![("in", in_addr), ("hist", hist_addr)], n },
    }
}

fn check(mem: &Memory, meta: &InstanceMeta) -> Result<(), String> {
    let n = meta.n;
    let hist_addr = meta.addr("hist");
    let in_addr = meta.addr("in");
    let bins = mem.outputs()[0].len() as u32 / 4;
    let mut expected = vec![0u32; bins as usize];
    for i in 0..n {
        let b = mem.load(in_addr + i, 1);
        if b < bins {
            expected[b as usize] += 1;
        }
    }
    let actual = mem.read_u32_slice(hist_addr, bins);
    // All input values land inside the bin range by construction.
    let total: u32 = expected.iter().sum();
    if total != n {
        return Err(format!("input values escaped the bin range: {total} != {n}"));
    }
    check_u32(&actual, &expected, "histogram")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbavf_sim::interp::run_golden;

    #[test]
    fn histogram_matches_host_reference() {
        let mut inst = build(Scale::Test);
        let p = inst.program.clone();
        let wgs = inst.workgroups;
        run_golden(&p, &mut inst.mem, wgs);
        inst.check(&inst.mem).unwrap();
    }
}
