//! Recursive (IIR) Gaussian approximation (AMD APP `RecursiveGaussian`).
//!
//! First-order causal IIR along each image row: `y[c] = a·x[c] + b·y[c-1]`.
//! One lane per row, a sequential column loop — the running state lives in a
//! register for the entire kernel (the longest register lifetimes in the
//! suite), and per-column loads stride by a full row (256 bytes), scattering
//! across cache indices.

use crate::util::{check_f32, gen_f32};
use crate::{Instance, InstanceMeta, Scale};
use mbavf_sim::isa::{CmpOp, SReg, VOp, VReg};
use mbavf_sim::program::Assembler;
use mbavf_sim::Memory;

const W: u32 = 64;
const A: f32 = 0.25;
const B: f32 = 0.75;

/// Build the workload.
pub fn build(scale: Scale) -> Instance {
    let rows = match scale {
        Scale::Test => 64u32,
        Scale::Paper => 128,
    };
    let n = rows * W;
    let mut mem = Memory::new(1 << 20);
    let input = gen_f32(0xAA, n as usize);
    let in_addr = mem.alloc_f32(&input);
    let out_addr = mem.alloc_zeroed(n);
    mem.mark_output(out_addr, n * 4);

    let mut a = Assembler::new();
    let (rowbase, y, x, addr, tmp) = (VReg(2), VReg(3), VReg(4), VReg(5), VReg(6));
    let (s_c, s_c4) = (SReg(2), SReg(3));
    a.v_mul_u(rowbase, VReg(1), W * 4); // row byte base
    a.v_mov(y, VOp::imm_f32(0.0));
    a.s_mov(s_c, 0u32);
    a.label("col");
    a.s_mul(s_c4, s_c, 4u32);
    a.v_add_u(addr, rowbase, VOp::Sreg(s_c4));
    a.v_load(x, addr, in_addr);
    a.v_mul_f(x, x, VOp::imm_f32(A));
    a.v_mul_f(tmp, y, VOp::imm_f32(B));
    a.v_add_f(y, x, tmp);
    a.v_store(y, addr, out_addr);
    a.s_add(s_c, s_c, 1u32);
    a.s_cmp(CmpOp::LtU, s_c, W);
    a.branch_scc_nz("col");
    a.end();

    Instance {
        name: "recursive_gaussian",
        program: a.finish().expect("valid kernel"),
        mem,
        workgroups: rows / 64,
        check,
        meta: InstanceMeta { addrs: vec![("in", in_addr), ("out", out_addr)], n },
    }
}

fn check(mem: &Memory, meta: &InstanceMeta) -> Result<(), String> {
    let n = meta.n;
    let input = mem.read_f32_slice(meta.addr("in"), n);
    let out = mem.read_f32_slice(meta.addr("out"), n);
    let mut expected = vec![0.0f32; n as usize];
    for r in 0..(n / W) as usize {
        let mut y = 0.0f32;
        for c in 0..W as usize {
            y = input[r * W as usize + c] * A + y * B;
            expected[r * W as usize + c] = y;
        }
    }
    check_f32(&out, &expected, 1e-6, "recursive_gaussian")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbavf_sim::interp::run_golden;

    #[test]
    fn recursive_gaussian_matches_host_reference() {
        let mut inst = build(Scale::Test);
        let p = inst.program.clone();
        let wgs = inst.workgroups;
        run_golden(&p, &mut inst.mem, wgs);
        inst.check(&inst.mem).unwrap();
    }
}
