//! Inclusive prefix sum (AMD APP `PrefixSum`).
//!
//! Hillis-Steele scan within each 64-element block, ping-ponging between two
//! buffers through memory (the ISA has no cross-lane shuffles, matching how
//! early OpenCL scans staged partial results in local memory). Six unrolled
//! doubling steps.

use crate::util::{check_u32, gen_u32};
use crate::{Instance, InstanceMeta, Scale};
use mbavf_sim::isa::{CmpOp, VReg};
use mbavf_sim::program::Assembler;
use mbavf_sim::Memory;

/// Build the workload.
pub fn build(scale: Scale) -> Instance {
    let n = match scale {
        Scale::Test => 128u32,
        Scale::Paper => 1024,
    };
    let mut mem = Memory::new(1 << 20);
    let input: Vec<u32> = gen_u32(0x55, n as usize).into_iter().map(|v| v % 1000).collect();
    let a_addr = mem.alloc_u32(&input);
    let b_addr = mem.alloc_zeroed(n);
    mem.mark_output(a_addr, n * 4);

    let mut asm = Assembler::new();
    let (self4, x, y, paddr) = (VReg(2), VReg(3), VReg(4), VReg(5));
    asm.v_mul_u(self4, VReg(1), 4u32);
    for (step, d) in [1u32, 2, 4, 8, 16, 32].into_iter().enumerate() {
        let (src, dst) = if step % 2 == 0 { (a_addr, b_addr) } else { (b_addr, a_addr) };
        asm.v_load(x, self4, src);
        // Partner: lanes with lane >= d read element i-d, others re-read
        // themselves (and then select 0).
        asm.v_cmp(CmpOp::GeU, VReg(0), d);
        asm.v_sub_u(paddr, self4, 4 * d);
        asm.v_sel(paddr, paddr, self4);
        asm.v_load(y, paddr, src);
        asm.v_sel(y, y, 0u32);
        asm.v_add_u(x, x, y);
        asm.v_store(x, self4, dst);
    }
    asm.end();

    Instance {
        name: "prefix_sum",
        program: asm.finish().expect("valid kernel"),
        mem,
        workgroups: n / 64,
        check,
        meta: InstanceMeta { addrs: vec![("a", a_addr), ("b", b_addr)], n },
    }
}

fn check(mem: &Memory, meta: &InstanceMeta) -> Result<(), String> {
    // Six steps: final result lands back in buffer A.
    let n = meta.n;
    let a = mem.read_u32_slice(meta.addr("a"), n);
    // Reconstruct the original input deterministically.
    let input: Vec<u32> =
        crate::util::gen_u32(0x55, n as usize).into_iter().map(|v| v % 1000).collect();
    let mut expected = vec![0u32; n as usize];
    for block in 0..(n / 64) as usize {
        let mut acc = 0u32;
        for i in 0..64 {
            acc = acc.wrapping_add(input[block * 64 + i]);
            expected[block * 64 + i] = acc;
        }
    }
    check_u32(&a, &expected, "prefix_sum")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbavf_sim::interp::run_golden;

    #[test]
    fn prefix_sum_matches_host_reference() {
        let mut inst = build(Scale::Test);
        let p = inst.program.clone();
        let wgs = inst.workgroups;
        run_golden(&p, &mut inst.mem, wgs);
        inst.check(&inst.mem).unwrap();
    }
}
