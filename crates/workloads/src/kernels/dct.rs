//! 8-point DCT-II over rows (AMD APP `DCT`).
//!
//! Each lane transforms one 8-sample row: the eight inputs are loaded into
//! registers once, then all eight output coefficients are computed as
//! register-resident dot products against compile-time cosine constants —
//! long register lifetimes that light up the VGPR AVF.

use crate::util::{check_f32, gen_f32};
use crate::{Instance, InstanceMeta, Scale};
use mbavf_sim::isa::{VOp, VReg};
use mbavf_sim::program::Assembler;
use mbavf_sim::Memory;

const ROW: usize = 8;

/// The DCT-II coefficient for output `u`, input `x`.
fn coef(u: usize, x: usize) -> f32 {
    let scale = if u == 0 { (1.0f64 / 8.0).sqrt() } else { (2.0f64 / 8.0).sqrt() };
    (scale * ((2 * x + 1) as f64 * u as f64 * std::f64::consts::PI / 16.0).cos()) as f32
}

/// Build the workload.
pub fn build(scale: Scale) -> Instance {
    let rows = match scale {
        Scale::Test => 64u32,
        Scale::Paper => 256,
    };
    let n = rows * ROW as u32;
    let mut mem = Memory::new(1 << 20);
    let input = gen_f32(0x99, n as usize);
    let in_addr = mem.alloc_f32(&input);
    let out_addr = mem.alloc_zeroed(n);
    mem.mark_output(out_addr, n * 4);

    let mut a = Assembler::new();
    let base = VReg(2); // row byte base = global id * 32
    let acc = VReg(3);
    let tmp = VReg(4);
    let inr = |x: usize| VReg(8 + x as u8); // v8..v15 hold the row
    a.v_mul_u(base, VReg(1), (ROW * 4) as u32);
    for x in 0..ROW {
        a.v_load(inr(x), base, in_addr + (x * 4) as u32);
    }
    for u in 0..ROW {
        a.v_mov(acc, VOp::imm_f32(0.0));
        for x in 0..ROW {
            a.v_mul_f(tmp, inr(x), VOp::imm_f32(coef(u, x)));
            a.v_add_f(acc, acc, tmp);
        }
        a.v_store(acc, base, out_addr + (u * 4) as u32);
    }
    a.end();

    Instance {
        name: "dct",
        program: a.finish().expect("valid kernel"),
        mem,
        workgroups: rows / 64,
        check,
        meta: InstanceMeta { addrs: vec![("in", in_addr), ("out", out_addr)], n },
    }
}

fn check(mem: &Memory, meta: &InstanceMeta) -> Result<(), String> {
    let n = meta.n;
    let input = mem.read_f32_slice(meta.addr("in"), n);
    let out = mem.read_f32_slice(meta.addr("out"), n);
    let mut expected = vec![0.0f32; n as usize];
    for r in 0..n as usize / ROW {
        for u in 0..ROW {
            let mut acc = 0.0f32;
            for x in 0..ROW {
                acc += input[r * ROW + x] * coef(u, x);
            }
            expected[r * ROW + u] = acc;
        }
    }
    check_f32(&out, &expected, 1e-6, "dct")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbavf_sim::interp::run_golden;

    #[test]
    fn dct_matches_host_reference() {
        let mut inst = build(Scale::Test);
        let p = inst.program.clone();
        let wgs = inst.workgroups;
        run_golden(&p, &mut inst.mem, wgs);
        inst.check(&inst.mem).unwrap();
    }

    #[test]
    fn dct_of_constant_row_concentrates_in_dc() {
        // DCT-II of a constant signal has all energy in coefficient 0.
        let c: f32 = (0..ROW).map(|x| coef(3, x)).sum();
        assert!(c.abs() < 1e-6, "AC coefficient rows sum to zero, got {c}");
        let dc: f32 = (0..ROW).map(|x| coef(0, x)).sum();
        assert!((dc - (8.0f32).sqrt() / 1.0).abs() < 1e-5);
    }
}
