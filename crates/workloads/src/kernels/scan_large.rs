//! Blocked two-phase scan (AMD APP `ScanLargeArrays`).
//!
//! Each workgroup scans a 512-element block: every lane sequentially scans
//! its 8-element sub-block (phase 1), then accumulates the sums of all
//! preceding lanes' sub-blocks with a masked broadcast loop (phase 2), and
//! finally rewrites its sub-block with the offset applied (phase 3).

use crate::util::{check_u32, gen_u32};
use crate::{Instance, InstanceMeta, Scale};
use mbavf_sim::isa::{CmpOp, SReg, VOp, VReg};
use mbavf_sim::program::Assembler;
use mbavf_sim::Memory;

const SUB: u32 = 8;

/// Build the workload.
pub fn build(scale: Scale) -> Instance {
    let n = match scale {
        Scale::Test => 512u32,
        Scale::Paper => 2048,
    };
    let mut mem = Memory::new(1 << 20);
    let input: Vec<u32> = gen_u32(0x66, n as usize).into_iter().map(|v| v % 100).collect();
    let in_addr = mem.alloc_u32(&input);
    let tmp_addr = mem.alloc_zeroed(n);
    let sums_addr = mem.alloc_zeroed(n / SUB);
    let out_addr = mem.alloc_zeroed(n);
    mem.mark_output(out_addr, n * 4);

    let mut a = Assembler::new();
    let (base4, run, val, saddr, offs, s_bcast, mask_val) =
        (VReg(2), VReg(3), VReg(4), VReg(5), VReg(6), VReg(7), VReg(8));
    // Phase 1: sequential inclusive scan of the 8-element sub-block.
    a.v_mul_u(base4, VReg(1), SUB * 4); // lane's sub-block byte base
    a.v_mov(run, 0u32);
    for j in 0..SUB {
        a.v_load(val, base4, in_addr + j * 4);
        a.v_add_u(run, run, val);
        a.v_store(run, base4, tmp_addr + j * 4);
    }
    a.v_mul_u(saddr, VReg(1), 4u32);
    a.v_store(run, saddr, sums_addr); // lane sum
                                      // Phase 2: offset = sum of sums of preceding lanes in this wavefront.
    let (s_l, s_a) = (SReg(2), SReg(3));
    a.v_mov(offs, 0u32);
    a.s_mul(s_a, SReg(0), 256u32); // this wavefront's sums base
    a.s_mov(s_l, 0u32);
    a.label("acc");
    a.v_load(s_bcast, VOp::Sreg(s_a), sums_addr);
    // mask: l' < lane  (the scalar loop index vs v0)
    a.v_cmp(CmpOp::LtU, VOp::Sreg(s_l), VReg(0));
    a.v_sel(mask_val, s_bcast, 0u32);
    a.v_add_u(offs, offs, mask_val);
    a.s_add(s_a, s_a, 4u32);
    a.s_add(s_l, s_l, 1u32);
    a.s_cmp(CmpOp::LtU, s_l, 64u32);
    a.branch_scc_nz("acc");
    // Phase 3: out = tmp + offset.
    for j in 0..SUB {
        a.v_load(val, base4, tmp_addr + j * 4);
        a.v_add_u(val, val, offs);
        a.v_store(val, base4, out_addr + j * 4);
    }
    a.end();

    Instance {
        name: "scan_large",
        program: a.finish().expect("valid kernel"),
        mem,
        workgroups: n / (64 * SUB),
        check,
        meta: InstanceMeta { addrs: vec![("in", in_addr), ("out", out_addr)], n },
    }
}

fn check(mem: &Memory, meta: &InstanceMeta) -> Result<(), String> {
    let n = meta.n;
    let input = mem.read_u32_slice(meta.addr("in"), n);
    let out = mem.read_u32_slice(meta.addr("out"), n);
    let block = 64 * SUB as usize;
    let mut expected = vec![0u32; n as usize];
    for b in 0..n as usize / block {
        let mut acc = 0u32;
        for i in 0..block {
            acc = acc.wrapping_add(input[b * block + i]);
            expected[b * block + i] = acc;
        }
    }
    check_u32(&out, &expected, "scan_large")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbavf_sim::interp::run_golden;

    #[test]
    fn scan_large_matches_host_reference() {
        let mut inst = build(Scale::Test);
        let p = inst.program.clone();
        let wgs = inst.workgroups;
        run_golden(&p, &mut inst.mem, wgs);
        inst.check(&inst.mem).unwrap();
    }
}
