//! Shared helpers for kernel construction and deterministic input data.

use mbavf_sim::isa::{CmpOp, SReg, VOp, VReg};
use mbavf_sim::program::Assembler;

/// Deterministic pseudo-random f32 values in `[0, 1)` (xorshift32).
pub fn gen_f32(seed: u32, count: usize) -> Vec<f32> {
    let mut state = seed.max(1);
    (0..count)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            (state >> 8) as f32 / (1u32 << 24) as f32
        })
        .collect()
}

/// Deterministic pseudo-random u32 values.
pub fn gen_u32(seed: u32, count: usize) -> Vec<u32> {
    let mut state = seed.max(1);
    (0..count)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            state
        })
        .collect()
}

/// Deterministic pseudo-random bytes.
pub fn gen_bytes(seed: u32, count: usize) -> Vec<u8> {
    gen_u32(seed, count).into_iter().map(|v| (v >> 13) as u8).collect()
}

/// Emit an all-lanes f32 sum reduction through memory.
///
/// Stores `val` to `scratch[wg*64 + lane]`, then loops over the 64 slots so
/// every lane accumulates the full wavefront sum into `acc` (which must be
/// initialized by the caller; the sum is *added* to it).
///
/// Clobbers `tmp`, `addr_v`, and scalar registers `s_i`, `s_addr`. The
/// `label` must be unique within the program.
#[allow(clippy::too_many_arguments)]
pub fn emit_wg_sum_f32(
    a: &mut Assembler,
    label: &str,
    scratch: u32,
    val: VReg,
    acc: VReg,
    tmp: VReg,
    addr_v: VReg,
    s_i: SReg,
    s_addr: SReg,
) {
    // Per-lane slot: (wg*64 + lane) * 4 = v1 * 4.
    a.v_mul_u(addr_v, VReg(1), 4u32);
    a.v_store(val, addr_v, scratch);
    // s_addr walks this wavefront's 64 slots: base = wg * 256.
    a.s_mul(s_addr, SReg(0), 256u32);
    a.s_mov(s_i, 0u32);
    a.label(label);
    a.v_load(tmp, VOp::Sreg(s_addr), scratch);
    a.v_add_f(acc, acc, tmp);
    a.s_add(s_addr, s_addr, 4u32);
    a.s_add(s_i, s_i, 1u32);
    a.s_cmp(CmpOp::LtU, s_i, 64u32);
    a.branch_scc_nz(label);
}

/// Compare two f32 buffers with a relative/absolute tolerance, returning the
/// first mismatch.
pub fn check_f32(actual: &[f32], expected: &[f32], tol: f32, what: &str) -> Result<(), String> {
    if actual.len() != expected.len() {
        return Err(format!("{what}: length {} != {}", actual.len(), expected.len()));
    }
    for (i, (&a, &e)) in actual.iter().zip(expected).enumerate() {
        let err = (a - e).abs();
        let bound = tol * (1.0 + e.abs());
        if err.is_nan() || err > bound {
            return Err(format!("{what}[{i}]: got {a}, expected {e} (err {err})"));
        }
    }
    Ok(())
}

/// Compare two u32 buffers exactly.
pub fn check_u32(actual: &[u32], expected: &[u32], what: &str) -> Result<(), String> {
    if actual.len() != expected.len() {
        return Err(format!("{what}: length {} != {}", actual.len(), expected.len()));
    }
    for (i, (&a, &e)) in actual.iter().zip(expected).enumerate() {
        if a != e {
            return Err(format!("{what}[{i}]: got {a}, expected {e}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(gen_f32(7, 4), gen_f32(7, 4));
        assert_ne!(gen_u32(7, 4), gen_u32(8, 4));
        assert!(gen_f32(3, 100).iter().all(|v| (0.0..1.0).contains(v)));
    }

    #[test]
    fn checkers_catch_mismatches() {
        assert!(check_u32(&[1, 2], &[1, 2], "x").is_ok());
        assert!(check_u32(&[1, 3], &[1, 2], "x").is_err());
        assert!(check_f32(&[1.0], &[1.0 + 1e-7], 1e-5, "y").is_ok());
        assert!(check_f32(&[1.0], &[2.0], 1e-5, "y").is_err());
        assert!(check_f32(&[f32::NAN], &[1.0], 1e-5, "y").is_err());
    }

    #[test]
    fn reduction_sums_all_lanes() {
        use mbavf_sim::interp::run_golden;
        use mbavf_sim::Memory;
        let mut mem = Memory::with_tracking(1 << 16, false);
        let scratch = mem.alloc_zeroed(64);
        let out = mem.alloc_zeroed(64);
        mem.mark_output(out, 256);
        let mut a = Assembler::new();
        // val = lane id as float approximation: use small ints exactly
        // representable; val = f32(lane) via integer-to-float is not in the
        // ISA, so build from a table-free trick: lane * 1.0 won't work on
        // int bits. Instead store lane as f32 from host? Use constant 1.0:
        // the sum must be 64.
        a.v_mov(VReg(2), VOp::imm_f32(1.0));
        a.v_mov(VReg(3), VOp::imm_f32(0.0));
        emit_wg_sum_f32(
            &mut a,
            "red",
            scratch,
            VReg(2),
            VReg(3),
            VReg(4),
            VReg(5),
            SReg(2),
            SReg(3),
        );
        a.v_mul_u(VReg(6), VReg(1), 4u32);
        a.v_store(VReg(3), VReg(6), out);
        a.end();
        let p = a.finish().unwrap();
        run_golden(&p, &mut mem, 1);
        for l in 0..64 {
            assert_eq!(mem.read_f32(out + l * 4), 64.0, "lane {l}");
        }
    }
}
