//! # mbavf-workloads — benchmark kernels for the MB-AVF studies
//!
//! Hand-written kernels in the `mbavf-sim` ISA mirroring the algorithmic
//! skeletons of the paper's workload suites (Rodinia, the AMD OpenCL/APP SDK
//! samples, and Mantevo):
//!
//! | Workload | Suite | Character |
//! |---|---|---|
//! | `minife` | Mantevo | CG solve with a distinct assembly phase (Fig. 5) |
//! | `comd` | Mantevo | force loop with dead energy diagnostics (false DUE) |
//! | `srad` | Rodinia | stencil with dead statistics pass (false DUE) |
//! | `matmul` | AMD APP | dense GEMM, high reuse |
//! | `transpose` | AMD APP | strided stores across indices |
//! | `dct` | AMD APP | 8-point DCT rows via a coefficient table |
//! | `histogram` | AMD APP | byte loads, bin counting |
//! | `prefix_sum` | AMD APP | Hillis-Steele scan through memory |
//! | `scan_large` | AMD APP | blocked two-phase scan |
//! | `fast_walsh` | AMD APP | XOR butterflies (ACE-interference prone) |
//! | `dwt_haar` | AMD APP | multi-level Haar wavelet |
//! | `recursive_gaussian` | AMD APP | IIR filter, long register lifetimes |
//! | `pathfinder` | Rodinia | DP grid walk with EXEC-mask divergence |
//!
//! Each workload builds an [`Instance`]: a program, an initialized
//! [`Memory`] with declared outputs, a workgroup count, and a host-side
//! checker validating the kernel against a reference implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernels;
mod util;

use mbavf_sim::{Memory, Program};

/// Problem-size selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small sizes for unit tests.
    Test,
    /// The sizes used by the experiment harness.
    Paper,
}

/// Addresses/sizes a workload records for its checker and for reports.
#[derive(Debug, Clone, Default)]
pub struct InstanceMeta {
    /// Named buffer base addresses.
    pub addrs: Vec<(&'static str, u32)>,
    /// Problem size (workload-specific meaning).
    pub n: u32,
}

impl InstanceMeta {
    /// Look up a named buffer address.
    ///
    /// # Panics
    ///
    /// Panics if the name was not registered (a workload bug).
    pub fn addr(&self, name: &str) -> u32 {
        self.addrs
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("no buffer named {name}"))
            .1
    }
}

/// A built, runnable workload.
pub struct Instance {
    /// Workload name (stable identifier).
    pub name: &'static str,
    /// The kernel.
    pub program: Program,
    /// Memory with inputs written and outputs marked.
    pub mem: Memory,
    /// Number of workgroups to dispatch.
    pub workgroups: u32,
    /// Host-side reference check of the final memory contents.
    check: fn(&Memory, &InstanceMeta) -> Result<(), String>,
    /// Buffer addresses and sizes the checker needs.
    pub meta: InstanceMeta,
}

impl std::fmt::Debug for Instance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Instance")
            .field("name", &self.name)
            .field("workgroups", &self.workgroups)
            .field("insts", &self.program.len())
            .finish()
    }
}

impl Instance {
    /// Validate the (post-run) memory against the host reference.
    ///
    /// # Errors
    ///
    /// A description of the first mismatch.
    pub fn check(&self, mem: &Memory) -> Result<(), String> {
        (self.check)(mem, &self.meta)
    }
}

/// A workload definition in the registry.
#[derive(Clone, Copy)]
pub struct Workload {
    /// Stable name.
    pub name: &'static str,
    /// Origin suite and one-line description.
    pub desc: &'static str,
    builder: fn(Scale) -> Instance,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Workload({})", self.name)
    }
}

impl Workload {
    /// Build a fresh instance (new memory, same deterministic inputs).
    pub fn build(&self, scale: Scale) -> Instance {
        (self.builder)(scale)
    }
}

/// The full workload suite, in a stable order.
pub fn suite() -> Vec<Workload> {
    vec![
        Workload {
            name: "minife",
            desc: "Mantevo: CG solve with assembly phase",
            builder: kernels::minife::build,
        },
        Workload {
            name: "comd",
            desc: "Mantevo: LJ force loop with dead energy diagnostics",
            builder: kernels::comd::build,
        },
        Workload {
            name: "srad",
            desc: "Rodinia: diffusion stencil with dead statistics",
            builder: kernels::srad::build,
        },
        Workload {
            name: "matmul",
            desc: "AMD APP: dense matrix multiply",
            builder: kernels::matmul::build,
        },
        Workload {
            name: "transpose",
            desc: "AMD APP: matrix transpose (strided stores)",
            builder: kernels::transpose::build,
        },
        Workload {
            name: "dct",
            desc: "AMD APP: 8-point DCT over rows",
            builder: kernels::dct::build,
        },
        Workload {
            name: "histogram",
            desc: "AMD APP: byte histogram by bin counting",
            builder: kernels::histogram::build,
        },
        Workload {
            name: "prefix_sum",
            desc: "AMD APP: Hillis-Steele prefix sum",
            builder: kernels::prefix_sum::build,
        },
        Workload {
            name: "scan_large",
            desc: "AMD APP: blocked two-phase scan",
            builder: kernels::scan_large::build,
        },
        Workload {
            name: "fast_walsh",
            desc: "AMD APP: fast Walsh-Hadamard transform",
            builder: kernels::fast_walsh::build,
        },
        Workload {
            name: "dwt_haar",
            desc: "AMD APP: 1D Haar wavelet",
            builder: kernels::dwt_haar::build,
        },
        Workload {
            name: "recursive_gaussian",
            desc: "AMD APP: recursive (IIR) Gaussian",
            builder: kernels::recursive_gaussian::build,
        },
        Workload {
            name: "pathfinder",
            desc: "Rodinia: DP grid walk with EXEC-mask divergence",
            builder: kernels::pathfinder::build,
        },
    ]
}

/// Look up one workload by name.
pub fn by_name(name: &str) -> Option<Workload> {
    suite().into_iter().find(|w| w.name == name)
}

/// The deliberately **nondeterministic** drill workload: every
/// [`Workload::build`] call perturbs its input, so two golden runs of
/// "the same" instance disagree. It exists to prove the golden-run
/// integrity gates fire, is excluded from [`suite`] (and thus from
/// [`by_name`]), and must never be used for real measurements.
pub fn nondet_drill() -> Workload {
    Workload {
        name: "nondet_drill",
        desc: "negative control: input drifts between builds",
        builder: kernels::nondet_drill::build,
    }
}

/// The deliberately **lopsided** drill workload: deterministic, but with a
/// cubically skewed per-workgroup retirement profile (64 : 27 : 8 : 1 at
/// four workgroups). It exists to make fault-site sampling bias measurable
/// — a sampler uniform per workgroup rather than per retired instruction
/// visibly over-samples its idle tail — and is excluded from [`suite`]
/// (and thus from [`by_name`]) because it measures the harness, not the
/// hardware.
pub fn lopsided_drill() -> Workload {
    Workload {
        name: "lopsided_drill",
        desc: "positive control: cubically skewed per-workgroup retirement",
        builder: kernels::lopsided_drill::build,
    }
}

/// The nine AMD-APP-style workloads used in the paper's Table II fault
/// injection study.
pub fn injection_suite() -> Vec<Workload> {
    let names = [
        "scan_large",
        "dct",
        "dwt_haar",
        "fast_walsh",
        "histogram",
        "transpose",
        "prefix_sum",
        "recursive_gaussian",
        "matmul",
    ];
    names.iter().map(|n| by_name(n).expect("registered")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbavf_sim::interp::run_golden;

    #[test]
    fn suite_has_thirteen_unique_workloads() {
        let s = suite();
        assert_eq!(s.len(), 13);
        let mut names: Vec<_> = s.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 13);
    }

    #[test]
    fn injection_suite_is_the_table2_nine() {
        assert_eq!(injection_suite().len(), 9);
    }

    #[test]
    fn by_name_roundtrip() {
        assert!(by_name("minife").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn nondet_drill_is_kept_out_of_the_suite() {
        // The drill is a negative control: reachable on purpose, never by
        // accident.
        assert!(by_name("nondet_drill").is_none());
        assert_eq!(nondet_drill().name, "nondet_drill");
    }

    #[test]
    fn lopsided_drill_is_kept_out_of_the_suite() {
        assert!(by_name("lopsided_drill").is_none());
        assert_eq!(lopsided_drill().name, "lopsided_drill");
    }

    /// Every workload must run to completion at test scale and pass its own
    /// host-reference check — the master correctness gate for the suite.
    #[test]
    fn all_workloads_match_reference_at_test_scale() {
        for w in suite() {
            let mut inst = w.build(Scale::Test);
            let program = inst.program.clone();
            let wgs = inst.workgroups;
            run_golden(&program, &mut inst.mem, wgs);
            inst.check(&inst.mem).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
    }

    #[test]
    fn all_workloads_match_reference_at_paper_scale() {
        for w in suite() {
            let mut inst = w.build(Scale::Paper);
            let program = inst.program.clone();
            let wgs = inst.workgroups;
            run_golden(&program, &mut inst.mem, wgs);
            inst.check(&inst.mem).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
    }

    /// The timing model must produce the same results as the functional
    /// interpreter for every workload.
    #[test]
    fn timing_matches_functional_for_all_workloads() {
        for w in suite() {
            let mut inst = w.build(Scale::Test);
            let program = inst.program.clone();
            let wgs = inst.workgroups;
            mbavf_sim::run_timed(&program, &mut inst.mem, wgs, &mbavf_sim::GpuConfig::default());
            inst.check(&inst.mem).unwrap_or_else(|e| panic!("{} (timed): {e}", w.name));
        }
    }
}
