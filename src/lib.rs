//! # mbavf — facade over the MB-AVF workspace
//!
//! One `use mbavf::...` away from the whole reproduction of *"Calculating
//! Architectural Vulnerability Factors for Spatial Multi-Bit Transient
//! Faults"* (MICRO 2014):
//!
//! * [`core`] — the paper's contribution: fault modes, protection domains,
//!   interleaved layouts, the MB-AVF analysis engine, SER/MTTF models, and
//!   real ECC codecs;
//! * [`sim`] — the GPU/APU simulator substrate with provenance tracing,
//!   liveness, and timeline extraction;
//! * [`workloads`] — the 13-kernel benchmark suite;
//! * [`inject`] — deterministic fault-injection campaigns.
//!
//! ```
//! use mbavf::core::analysis::{mb_avf, AnalysisConfig};
//! use mbavf::core::geometry::FaultMode;
//! use mbavf::core::layout::LinearLayout;
//! use mbavf::core::protection::ProtectionKind;
//! use mbavf::core::timeline::{Interval, TimelineStore};
//!
//! // A byte that is architecturally required for half its lifetime...
//! let mut store = TimelineStore::new(1, 100);
//! store.byte_mut(0).push(Interval { start: 0, end: 50, ace_mask: 0xFF, checked: true })?;
//! let layout = LinearLayout::new(1, 8, 8);
//!
//! // ...under parity, a 2x1 fault inside one domain evades detection: SDC.
//! let r = mb_avf(&store, &layout, &FaultMode::mx1(2),
//!                &AnalysisConfig::new(ProtectionKind::Parity))?;
//! assert_eq!(r.sdc_avf(), 0.5);
//! assert_eq!(r.due_avf(), 0.0);
//! # Ok::<(), mbavf::core::CoreError>(())
//! ```

#![forbid(unsafe_code)]

pub use mbavf_core as core;
pub use mbavf_inject as inject;
pub use mbavf_sim as sim;
pub use mbavf_workloads as workloads;
