//! The Section VIII design flow as a library user would run it: pick the
//! cheapest VGPR protection design meeting an SDC budget.
//!
//! ```sh
//! cargo run --release --example vgpr_protection_design
//! ```

use mbavf::core::analysis::{mb_avf, AnalysisConfig};
use mbavf::core::geometry::FaultMode;
use mbavf::core::layout::{VgprInterleave, VgprLayout};
use mbavf::core::protection::ProtectionKind;
use mbavf::core::ser::{paper_table3, SerBreakdown};
use mbavf::sim::extract::vgpr_timelines;
use mbavf::sim::liveness::analyze;
use mbavf::sim::{run_timed, GpuConfig};
use mbavf::workloads::{by_name, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = by_name("dct").expect("in the suite");
    let mut inst = w.build(Scale::Paper);
    let program = inst.program.clone();
    let res = run_timed(&program, &mut inst.mem, inst.workgroups, &GpuConfig::default());
    let lv = analyze(&res.trace, &inst.mem);
    let (vgpr, geom) = vgpr_timelines(&res, &lv, 0);

    let sdc_budget = 0.10; // FIT, against Table III's total raw rate of 100
    println!("VGPR protection design for `dct`, SDC budget {sdc_budget} FIT\n");
    println!("{:<16} {:>10} {:>10} {:>10}  verdict", "design", "SDC FIT", "DUE FIT", "area ovh");

    let mut best: Option<(String, f64)> = None;
    for scheme in [ProtectionKind::Parity, ProtectionKind::SecDed] {
        for il in [
            VgprInterleave::IntraThread(2),
            VgprInterleave::IntraThread(4),
            VgprInterleave::InterThread(2),
            VgprInterleave::InterThread(4),
        ] {
            let layout = VgprLayout::new(geom, il)?;
            // Inter-thread reads are lock-step: DUE preempts SDC.
            let lock_step = matches!(il, VgprInterleave::InterThread(_));
            let cfg = AnalysisConfig::new(scheme).with_due_preempts_sdc(lock_step);
            let mut sdc = Vec::new();
            let mut due = Vec::new();
            for r in paper_table3() {
                let result = mb_avf(&vgpr, &layout, &FaultMode::mx1(r.mode_bits), &cfg)?;
                sdc.push((r.clone(), result.sdc_avf()));
                due.push((r, result.due_avf()));
            }
            let sdc_fit = SerBreakdown::new(sdc).total_fit();
            let due_fit = SerBreakdown::new(due).total_fit();
            let overhead = scheme.overhead(32);
            let label = format!("{scheme} {}", il.label());
            let meets = sdc_fit <= sdc_budget;
            println!(
                "{:<16} {:>10.4} {:>10.4} {:>9.1}%  {}",
                label,
                sdc_fit,
                due_fit,
                overhead * 100.0,
                if meets { "meets budget" } else { "over budget" }
            );
            if meets {
                match &best {
                    Some((_, b)) if *b <= overhead => {}
                    _ => best = Some((label, overhead)),
                }
            }
        }
    }
    match best {
        Some((label, ovh)) => {
            println!("\n=> cheapest design meeting the budget: {label} ({:.1}% area)", ovh * 100.0)
        }
        None => println!("\n=> no evaluated design meets the budget; consider DEC-TED"),
    }
    Ok(())
}
