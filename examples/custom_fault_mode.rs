//! Beyond the paper's Mx1 faults: define arbitrary 2-D fault modes (squares,
//! diagonals, sparse clusters) and measure their MB-AVFs — the model
//! supports any geometry (Section VI-A).
//!
//! ```sh
//! cargo run --release --example custom_fault_mode
//! ```

use mbavf::core::analysis::{mb_avf, AnalysisConfig};
use mbavf::core::geometry::FaultMode;
use mbavf::core::layout::{CacheGeometry, CacheInterleave, CacheLayout};
use mbavf::core::protection::ProtectionKind;
use mbavf::sim::extract::l1_timelines;
use mbavf::sim::liveness::analyze;
use mbavf::sim::{run_timed, GpuConfig};
use mbavf::workloads::{by_name, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = by_name("matmul").expect("in the suite");
    let mut inst = w.build(Scale::Paper);
    let program = inst.program.clone();
    let res = run_timed(&program, &mut inst.mem, inst.workgroups, &GpuConfig::default());
    let lv = analyze(&res.trace, &inst.mem);
    let l1 = l1_timelines(&res, &lv, &inst.mem, 0);

    // A 2x2 square, a 3-bit diagonal, and an L-shaped cluster — all shapes
    // observed in neutron beam studies of dense SRAM.
    let square = FaultMode::rect(2, 2);
    let diagonal = FaultMode::from_offsets("diag3", [(0, 0), (1, 1), (2, 2)])?;
    let ell = FaultMode::from_offsets("L4", [(0, 0), (1, 0), (2, 0), (2, 1)])?;
    let row4 = FaultMode::mx1(4);

    let layout = CacheLayout::new(CacheGeometry::l1_16k(), CacheInterleave::WayPhysical(2))?;
    let cfg = AnalysisConfig::new(ProtectionKind::SecDed);

    println!("MB-AVFs of 4-bit-class fault modes, L1 of `matmul`, SEC-DED + x2 way:\n");
    println!("{:<8} {:>6} {:>10} {:>10} {:>10}", "mode", "bits", "groups", "DUE AVF", "SDC AVF");
    for mode in [row4, square, diagonal, ell] {
        let r = mb_avf(&l1, &layout, &mode, &cfg)?;
        println!(
            "{:<8} {:>6} {:>10} {:>10.4} {:>10.4}",
            mode.name(),
            mode.len(),
            r.groups(),
            r.due_avf(),
            r.sdc_avf()
        );
    }
    println!("\nShapes spanning rows cross more wordlines, hitting more protection");
    println!("domains with fewer bits each — geometry, not just size, decides whether a");
    println!("fault is corrected, detected, or silent.");
    Ok(())
}
