//! A design study on a real workload: how interleaving style and protection
//! scheme change the L1 cache's soft-error rate for every fault mode.
//!
//! ```sh
//! cargo run --release --example cache_interleaving_study
//! ```

use mbavf::core::analysis::{mb_avf, AnalysisConfig};
use mbavf::core::geometry::FaultMode;
use mbavf::core::layout::{CacheInterleave, CacheLayout};
use mbavf::core::protection::ProtectionKind;
use mbavf::core::ser::{paper_table3, SerBreakdown};
use mbavf::sim::extract::l1_timelines;
use mbavf::sim::liveness::analyze;
use mbavf::sim::{run_timed, GpuConfig};
use mbavf::workloads::{by_name, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Simulate the transpose workload (strided stores: interesting
    // interleaving behaviour).
    let w = by_name("transpose").expect("in the suite");
    let mut inst = w.build(Scale::Paper);
    let program = inst.program.clone();
    let res = run_timed(&program, &mut inst.mem, inst.workgroups, &GpuConfig::default());
    let lv = analyze(&res.trace, &inst.mem);
    let l1 = l1_timelines(&res, &lv, &inst.mem, 0);
    let geom = mbavf::core::layout::CacheGeometry::l1_16k();

    println!("L1 SER for `transpose` (raw rates from Table III, total = 100)\n");
    println!("{:<28} {:>12} {:>12} {:>12}", "design", "SDC FIT", "DUE FIT", "total FIT");
    let rates = paper_table3();
    for scheme in [ProtectionKind::Parity, ProtectionKind::SecDed, ProtectionKind::DecTed] {
        for il in [
            CacheInterleave::Logical(2),
            CacheInterleave::WayPhysical(2),
            CacheInterleave::IndexPhysical(2),
            CacheInterleave::WayPhysical(4),
        ] {
            let layout = CacheLayout::new(geom, il)?;
            let cfg = AnalysisConfig::new(scheme);
            let mut sdc = Vec::new();
            let mut due = Vec::new();
            for r in &rates {
                let res = mb_avf(&l1, &layout, &FaultMode::mx1(r.mode_bits), &cfg)?;
                sdc.push((r.clone(), res.sdc_avf()));
                due.push((r.clone(), res.due_avf()));
            }
            let sdc_fit = SerBreakdown::new(sdc).total_fit();
            let due_fit = SerBreakdown::new(due).total_fit();
            println!(
                "{:<28} {:>12.4} {:>12.4} {:>12.4}",
                format!("{scheme} + {}", il.label()),
                sdc_fit,
                due_fit,
                sdc_fit + due_fit
            );
        }
    }
    println!("\nStronger codes trade SDC for DUE; interleaving width decides which fault");
    println!("modes stay within the code's reach. Pick the cheapest design meeting your");
    println!("SDC target (Section VIII's methodology, applied to a cache).");
    Ok(())
}
