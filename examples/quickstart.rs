//! Quickstart: write a tiny GPU kernel, run it on the timing simulator, and
//! measure single- and multi-bit AVFs of the L1 cache.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mbavf::core::analysis::{mb_avf, AnalysisConfig};
use mbavf::core::avf::raw_avf;
use mbavf::core::geometry::FaultMode;
use mbavf::core::layout::{CacheGeometry, CacheInterleave, CacheLayout};
use mbavf::core::protection::ProtectionKind;
use mbavf::sim::extract::l1_timelines;
use mbavf::sim::isa::VReg;
use mbavf::sim::liveness::analyze;
use mbavf::sim::{run_timed, Assembler, GpuConfig, Memory};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Host setup: a SAXPY over 256 elements, with the result marked as
    //    the program's architectural output.
    let n = 256u32;
    let mut mem = Memory::new(1 << 20);
    let x = mem.alloc_f32(&(0..n).map(|i| i as f32).collect::<Vec<_>>());
    let y = mem.alloc_f32(&(0..n).map(|i| 0.5 * i as f32).collect::<Vec<_>>());
    let out = mem.alloc_zeroed(n);
    mem.mark_output(out, n * 4);

    // 2. The kernel: out[i] = 2*x[i] + y[i], one lane per element.
    let mut asm = Assembler::new();
    asm.v_mul_u(VReg(2), VReg(1), 4u32); // element byte offset
    asm.v_load(VReg(3), VReg(2), x);
    asm.v_load(VReg(4), VReg(2), y);
    asm.v_mul_f(VReg(3), VReg(3), mbavf::sim::isa::VOp::imm_f32(2.0));
    asm.v_add_f(VReg(5), VReg(3), VReg(4));
    asm.v_store(VReg(5), VReg(2), out);
    asm.end();
    let program = asm.finish()?;

    // 3. Timed run on the paper's GPU (4 CUs, 16KB L1s, 256KB shared L2).
    let res = run_timed(&program, &mut mem, n / 64, &GpuConfig::default());
    println!("ran {} instructions in {} cycles", res.retired, res.cycles);
    println!("out[10] = {}", mem.read_f32(out + 40));

    // 4. ACE analysis: liveness over the trace, then per-byte L1 timelines.
    let lv = analyze(&res.trace, &mem);
    let l1 = l1_timelines(&res, &lv, &mem, 0);
    println!("L1 single-bit (raw ACE) AVF: {:.4}", raw_avf(&l1));

    // 5. Multi-bit AVFs: 2x1 and 4x1 faults under parity, with and without
    //    physical interleaving.
    let geom = CacheGeometry::l1_16k();
    let cfg = AnalysisConfig::new(ProtectionKind::Parity);
    for il in [CacheInterleave::Logical(1), CacheInterleave::WayPhysical(2)] {
        let layout = CacheLayout::new(geom, il)?;
        for m in [1u32, 2, 4] {
            let r = mb_avf(&l1, &layout, &FaultMode::mx1(m), &cfg)?;
            println!(
                "  {:18} {}x1: DUE AVF {:.4}  SDC AVF {:.4}",
                il.label(),
                m,
                r.due_avf(),
                r.sdc_avf()
            );
        }
    }
    Ok(())
}
