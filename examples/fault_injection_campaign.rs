//! Run a fault-injection campaign directly: inject single-bit faults into
//! the VGPR during `fast_walsh` and compare outcome statistics against the
//! ACE-analysis model's expectations.
//!
//! ```sh
//! cargo run --release --example fault_injection_campaign
//! ```

use mbavf::inject::{single_bit_campaign, CampaignConfig, Outcome};
use mbavf::workloads::{by_name, Scale};

fn main() {
    let w = by_name("fast_walsh").expect("in the suite");
    let cfg = CampaignConfig {
        seed: 42,
        injections: 400,
        scale: Scale::Paper,
        ..CampaignConfig::default()
    };
    println!("injecting {} single-bit VGPR faults into `{}` ...", cfg.injections, w.name);
    let summary = single_bit_campaign(&w, &cfg);
    let f = summary.fractions();
    println!("\noutcomes:");
    println!("  masked (no visible effect): {:>6.1}%", f.masked * 100.0);
    println!("  silent data corruption:     {:>6.1}%", f.sdc * 100.0);
    println!("  hang (step budget blown):   {:>6.1}%", f.hang * 100.0);
    println!("  crash (isolated panic):     {:>6.1}%", f.crash * 100.0);
    println!(
        "  read before overwrite:      {:>6.1}%  (what a per-register parity check would catch)",
        summary.read_fraction() * 100.0
    );

    // Every SDC must have been readable: spot the invariant in the data.
    let violations = summary
        .records
        .iter()
        .filter(|r| r.outcome == Outcome::Sdc && !r.read_before_overwrite)
        .count();
    println!("\nSDCs that were never read back: {violations} (must be 0)");

    let sites = summary.sdc_sites();
    println!("first SDC ACE bits found:");
    for s in sites.iter().take(5) {
        println!(
            "  wg {} @ instr {}: v{} lane {} bit {}",
            s.wg, s.after_retired, s.reg, s.lane, s.bit
        );
    }
}
