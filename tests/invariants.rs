//! Property-based invariants of the MB-AVF analysis over randomized
//! timelines, layouts, fault modes, and protection schemes.
//!
//! Cases are generated with the workspace's vendored SplitMix64 (one
//! independent stream per case index), so failures reproduce exactly from
//! the case number in the assertion message.

use mbavf::core::analysis::{mb_avf, windowed_mb_avf, AnalysisConfig};
use mbavf::core::geometry::FaultMode;
use mbavf::core::layout::LinearLayout;
use mbavf::core::protection::ProtectionKind;
use mbavf::core::rng::SplitMix64;
use mbavf::core::timeline::{Interval, TimelineStore};

const TOTAL: u64 = 400;

/// Run `prop` against `cases` independent RNG streams.
fn for_cases(cases: u64, mut prop: impl FnMut(u64, &mut SplitMix64)) {
    const SEED: u64 = 0x5EED_1517;
    for case in 0..cases {
        let mut rng = SplitMix64::stream(SEED, case);
        prop(case, &mut rng);
    }
}

/// A random, valid timeline store over `bytes` bytes.
fn arb_store(rng: &mut SplitMix64, bytes: usize) -> TimelineStore {
    let mut store = TimelineStore::new(bytes, TOTAL);
    for b in 0..bytes {
        let mut t = 0u64;
        for _ in 0..rng.below(8) {
            let gap = rng.range_u64(1, 40);
            let len = rng.range_u64(1, 60);
            let start = t + gap;
            let end = (start + len).min(TOTAL);
            if start >= end {
                break;
            }
            let mask = rng.next_u32() as u8;
            let checked = rng.bool();
            store
                .byte_mut(b)
                .push(Interval { start, end, ace_mask: mask, checked })
                .expect("ordered by construction");
            t = end;
        }
    }
    store
}

fn arb_scheme(rng: &mut SplitMix64) -> ProtectionKind {
    match rng.below(5) {
        0 => ProtectionKind::None,
        1 => ProtectionKind::Parity,
        2 => ProtectionKind::SecDed,
        3 => ProtectionKind::DecTed,
        _ => ProtectionKind::Crc { burst_detect: 4 },
    }
}

/// AVF components are probabilities and partition at most the whole.
#[test]
fn avf_components_are_well_formed() {
    for_cases(64, |case, rng| {
        let store = arb_store(rng, 8);
        let scheme = arb_scheme(rng);
        let m = rng.range_u64(1, 6) as u32;
        let dpd = rng.bool();
        let domain_bits = rng.range_u64(1, 16) as u32;
        let layout = LinearLayout::new(1, 64, domain_bits);
        let cfg = AnalysisConfig::new(scheme).with_due_preempts_sdc(dpd);
        let r = mb_avf(&store, &layout, &FaultMode::mx1(m), &cfg).unwrap();
        assert!(r.sdc_avf() >= 0.0 && r.sdc_avf() <= 1.0, "case {case}");
        assert!(r.due_avf() >= 0.0 && r.due_avf() <= 1.0, "case {case}");
        assert!(r.total_avf() <= 1.0 + 1e-12, "case {case}");
        assert!((r.total_avf() - (r.sdc_avf() + r.due_avf())).abs() < 1e-12, "case {case}");
    });
}

/// No protection is the SDC worst case for every mode and layout.
#[test]
fn unprotected_is_sdc_worst_case() {
    for_cases(64, |case, rng| {
        let store = arb_store(rng, 8);
        let scheme = arb_scheme(rng);
        let m = rng.range_u64(1, 6) as u32;
        let domain_bits = rng.range_u64(1, 16) as u32;
        let layout = LinearLayout::new(1, 64, domain_bits);
        let mode = FaultMode::mx1(m);
        let none =
            mb_avf(&store, &layout, &mode, &AnalysisConfig::new(ProtectionKind::None)).unwrap();
        let prot = mb_avf(&store, &layout, &mode, &AnalysisConfig::new(scheme)).unwrap();
        assert!(
            prot.sdc_avf() <= none.sdc_avf() + 1e-12,
            "case {case}: {scheme:?} m={m}: {} > {}",
            prot.sdc_avf(),
            none.sdc_avf()
        );
    });
}

/// The lock-step rule only reclassifies SDC as DUE: totals invariant.
#[test]
fn lockstep_preserves_total() {
    for_cases(64, |case, rng| {
        let store = arb_store(rng, 8);
        let scheme = arb_scheme(rng);
        let m = rng.range_u64(1, 6) as u32;
        let domain_bits = rng.range_u64(1, 16) as u32;
        let layout = LinearLayout::new(1, 64, domain_bits);
        let mode = FaultMode::mx1(m);
        let base = mb_avf(&store, &layout, &mode, &AnalysisConfig::new(scheme)).unwrap();
        let locked = mb_avf(
            &store,
            &layout,
            &mode,
            &AnalysisConfig::new(scheme).with_due_preempts_sdc(true),
        )
        .unwrap();
        assert!((base.total_avf() - locked.total_avf()).abs() < 1e-12, "case {case}");
        assert!(locked.sdc_avf() <= base.sdc_avf() + 1e-12, "case {case}");
    });
}

/// Windowed results partition the whole-run result exactly.
#[test]
fn windows_partition_the_total() {
    for_cases(64, |case, rng| {
        let store = arb_store(rng, 6);
        let scheme = arb_scheme(rng);
        let m = rng.range_u64(1, 5) as u32;
        let window = rng.range_u64(1, 500);
        let layout = LinearLayout::new(1, 48, 8);
        let mode = FaultMode::mx1(m);
        let cfg = AnalysisConfig::new(scheme);
        let total = mb_avf(&store, &layout, &mode, &cfg).unwrap();
        let parts = windowed_mb_avf(&store, &layout, &mode, &cfg, window).unwrap();
        let sdc: u128 = parts.iter().map(|p| p.sdc_group_cycles()).sum();
        let t: u128 = parts.iter().map(|p| p.true_due_group_cycles()).sum();
        let f: u128 = parts.iter().map(|p| p.false_due_group_cycles()).sum();
        assert_eq!(sdc, total.sdc_group_cycles(), "case {case}");
        assert_eq!(t, total.true_due_group_cycles(), "case {case}");
        assert_eq!(f, total.false_due_group_cycles(), "case {case}");
        let cycles: u64 = parts.iter().map(|p| p.cycles()).sum();
        assert_eq!(cycles, TOTAL, "case {case}");
    });
}

/// Growing the fault mode never shrinks the unprotected SDC AVF
/// (a bigger fault can only cover more ACE state per group).
#[test]
fn unprotected_sdc_monotone_in_mode_size() {
    for_cases(64, |case, rng| {
        let store = arb_store(rng, 8);
        let m = rng.range_u64(1, 5) as u32;
        let layout = LinearLayout::new(1, 64, 64);
        let cfg = AnalysisConfig::new(ProtectionKind::None);
        let small = mb_avf(&store, &layout, &FaultMode::mx1(m), &cfg).unwrap();
        let big = mb_avf(&store, &layout, &FaultMode::mx1(m + 1), &cfg).unwrap();
        // Compare group-cycle *fractions*; group counts differ by one.
        assert!(
            big.sdc_avf() >= small.sdc_avf() * 0.98 - 1e-12,
            "case {case}: m={} small {} big {}",
            m,
            small.sdc_avf(),
            big.sdc_avf()
        );
    });
}

/// The real SEC-DED codec honours the abstract ladder for 1 and 2 flips
/// on arbitrary data words.
#[test]
fn secded_codec_matches_model() {
    use mbavf::core::ecc::{Decoded, SecDed};
    let code = SecDed::new(32);
    for_cases(32, |case, rng| {
        let data = rng.next_u32();
        let i = rng.below(39) as u32;
        let j = rng.below(39) as u32;
        let cw = code.encode(u64::from(data));
        assert_eq!(code.decode(cw), Decoded::Ok(u64::from(data)), "case {case}");
        let one = code.decode(cw ^ (1u128 << i));
        assert_eq!(one, Decoded::Corrected { data: u64::from(data), bits: 1 }, "case {case}");
        if i != j {
            assert_eq!(
                code.decode(cw ^ (1u128 << i) ^ (1u128 << j)),
                Decoded::Detected,
                "case {case}"
            );
        }
    });
}

/// The real DEC-TED codec corrects any double and never mis-decodes it.
#[test]
fn dected_codec_matches_model() {
    use mbavf::core::ecc::{DecTed, Decoded};
    let code = DecTed::new();
    for_cases(32, |case, rng| {
        let data = rng.next_u32();
        let i = rng.below(45) as u32;
        let j = rng.below(45) as u32;
        let cw = code.encode(data);
        if i != j {
            match code.decode(cw ^ (1u64 << i) ^ (1u64 << j)) {
                Decoded::Corrected { data: d, bits: 2 } => assert_eq!(d, data, "case {case}"),
                other => panic!("case {case}: bits {i},{j}: {other:?}"),
            }
        }
    });
}
