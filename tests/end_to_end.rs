//! End-to-end integration: the full pipeline (workload → timing simulation →
//! liveness → timelines → MB-AVF) holds its cross-crate invariants.

use mbavf::core::analysis::{mb_avf, windowed_mb_avf, AnalysisConfig};
use mbavf::core::avf::raw_avf;
use mbavf::core::geometry::FaultMode;
use mbavf::core::layout::{CacheGeometry, CacheInterleave, CacheLayout, PhysicalLayout};
use mbavf::core::protection::ProtectionKind;
use mbavf::core::timeline::TimelineStore;
use mbavf::sim::extract::{l1_timelines, vgpr_timelines};
use mbavf::sim::liveness::analyze;
use mbavf::sim::{run_timed, GpuConfig};
use mbavf::workloads::{by_name, Scale};

struct Pipeline {
    l1: TimelineStore,
    vgpr: TimelineStore,
    vgpr_geom: mbavf::core::layout::VgprGeometry,
}

fn pipeline(name: &str) -> Pipeline {
    let w = by_name(name).expect("workload registered");
    let mut inst = w.build(Scale::Test);
    let program = inst.program.clone();
    let wgs = inst.workgroups;
    let res = run_timed(&program, &mut inst.mem, wgs, &GpuConfig::default());
    inst.check(&inst.mem).expect("kernel must stay correct under the timing model");
    let lv = analyze(&res.trace, &inst.mem);
    let l1 = l1_timelines(&res, &lv, &inst.mem, 0);
    let (vgpr, vgpr_geom) = vgpr_timelines(&res, &lv, 0);
    Pipeline { l1, vgpr, vgpr_geom }
}

fn l1_layout(il: CacheInterleave) -> CacheLayout {
    CacheLayout::new(CacheGeometry::l1_16k(), il).expect("valid")
}

#[test]
fn unprotected_sdc_equals_raw_ace_for_single_bit() {
    // With no protection, a single-bit fault causes SDC exactly when the bit
    // is (value-)ACE: the 1x1 SDC AVF must equal the raw ACE AVF.
    let p = pipeline("matmul");
    let layout = l1_layout(CacheInterleave::Logical(1));
    let cfg = AnalysisConfig::new(ProtectionKind::None);
    let r = mb_avf(&p.l1, &layout, &FaultMode::mx1(1), &cfg).unwrap();
    let raw = raw_avf(&p.l1);
    assert!((r.sdc_avf() - raw).abs() < 1e-12, "sdc {} vs raw {}", r.sdc_avf(), raw);
    assert_eq!(r.due_avf(), 0.0);
}

#[test]
fn parity_converts_unprotected_sdc_to_due_for_single_bit() {
    // A 1x1 fault under parity is always detected: its SDC AVF is zero and
    // its *true* DUE AVF equals the unprotected SDC AVF.
    let p = pipeline("dct");
    let layout = l1_layout(CacheInterleave::Logical(1));
    let none =
        mb_avf(&p.l1, &layout, &FaultMode::mx1(1), &AnalysisConfig::new(ProtectionKind::None))
            .unwrap();
    let parity =
        mb_avf(&p.l1, &layout, &FaultMode::mx1(1), &AnalysisConfig::new(ProtectionKind::Parity))
            .unwrap();
    assert_eq!(parity.sdc_avf(), 0.0);
    assert!((parity.true_due_avf() - none.sdc_avf()).abs() < 1e-12);
    // ...and SEC-DED corrects it entirely.
    let secded =
        mb_avf(&p.l1, &layout, &FaultMode::mx1(1), &AnalysisConfig::new(ProtectionKind::SecDed))
            .unwrap();
    assert_eq!(secded.total_avf(), 0.0);
}

#[test]
fn mb_avf_within_section4d_bounds() {
    // Section IV-D: SB-AVF <= MB-AVF <= M x SB-AVF (modulo the slightly
    // smaller group denominator at array edges).
    let p = pipeline("fast_walsh");
    let layout = l1_layout(CacheInterleave::Logical(1));
    let cfg = AnalysisConfig::new(ProtectionKind::None);
    let sb = mb_avf(&p.l1, &layout, &FaultMode::mx1(1), &cfg).unwrap().sdc_avf();
    assert!(sb > 0.0);
    for m in [2u32, 3, 4, 8] {
        let mb = mb_avf(&p.l1, &layout, &FaultMode::mx1(m), &cfg).unwrap().sdc_avf();
        let cols = f64::from(layout.cols());
        let slack = cols / (cols - f64::from(m) + 1.0);
        assert!(mb >= sb * 0.999, "m={m}: mb {mb} < sb {sb}");
        assert!(mb <= sb * f64::from(m) * slack + 1e-12, "m={m}: mb {mb} vs sb {sb}");
    }
}

#[test]
fn windowed_analysis_sums_to_total() {
    let p = pipeline("histogram");
    let layout = l1_layout(CacheInterleave::WayPhysical(2));
    let cfg = AnalysisConfig::new(ProtectionKind::Parity);
    let mode = FaultMode::mx1(3);
    let total = mb_avf(&p.l1, &layout, &mode, &cfg).unwrap();
    let windows =
        windowed_mb_avf(&p.l1, &layout, &mode, &cfg, p.l1.total_cycles() / 7 + 1).unwrap();
    let sdc: u128 = windows.iter().map(|w| w.sdc_group_cycles()).sum();
    let tdue: u128 = windows.iter().map(|w| w.true_due_group_cycles()).sum();
    let fdue: u128 = windows.iter().map(|w| w.false_due_group_cycles()).sum();
    assert_eq!(sdc, total.sdc_group_cycles());
    assert_eq!(tdue, total.true_due_group_cycles());
    assert_eq!(fdue, total.false_due_group_cycles());
}

#[test]
fn stronger_codes_never_increase_sdc_for_odd_modes() {
    // For any mode, no protection is the SDC worst case; adding parity can
    // only remove SDC for modes whose overlapped regions are odd.
    let p = pipeline("scan_large");
    for il in [CacheInterleave::Logical(2), CacheInterleave::WayPhysical(2)] {
        let layout = l1_layout(il);
        for m in [1u32, 2, 3, 4, 5] {
            let mode = FaultMode::mx1(m);
            let none =
                mb_avf(&p.l1, &layout, &mode, &AnalysisConfig::new(ProtectionKind::None)).unwrap();
            let parity =
                mb_avf(&p.l1, &layout, &mode, &AnalysisConfig::new(ProtectionKind::Parity))
                    .unwrap();
            assert!(
                parity.sdc_avf() <= none.sdc_avf() + 1e-12,
                "m={m} il={il:?}: parity sdc {} > none sdc {}",
                parity.sdc_avf(),
                none.sdc_avf()
            );
        }
    }
}

#[test]
fn vgpr_lockstep_rule_trades_sdc_for_due() {
    // Enabling the Section VIII lock-step rule must not increase SDC, and
    // whatever SDC it removes must reappear as DUE.
    let p = pipeline("dct");
    let layout = mbavf::core::layout::VgprLayout::new(
        p.vgpr_geom,
        mbavf::core::layout::VgprInterleave::InterThread(2),
    )
    .unwrap();
    let mode = FaultMode::mx1(5);
    let base = AnalysisConfig::new(ProtectionKind::Parity);
    let locked = base.with_due_preempts_sdc(true);
    let r0 = mb_avf(&p.vgpr, &layout, &mode, &base).unwrap();
    let r1 = mb_avf(&p.vgpr, &layout, &mode, &locked).unwrap();
    assert!(r1.sdc_avf() <= r0.sdc_avf() + 1e-12);
    assert!(
        (r1.total_avf() - r0.total_avf()).abs() < 1e-12,
        "lock-step must only reclassify, not change totals"
    );
}

#[test]
fn all_workloads_survive_the_full_pipeline() {
    for name in ["minife", "comd", "srad", "prefix_sum", "dwt_haar", "recursive_gaussian"] {
        let p = pipeline(name);
        p.l1.validate().unwrap();
        p.vgpr.validate().unwrap();
        let layout = l1_layout(CacheInterleave::Logical(1));
        let cfg = AnalysisConfig::new(ProtectionKind::Parity);
        let r = mb_avf(&p.l1, &layout, &FaultMode::mx1(2), &cfg).unwrap();
        assert!(r.total_avf() <= 1.0, "{name}");
    }
}

#[test]
fn divergent_workload_has_per_lane_register_timelines() {
    // pathfinder's dp register is written under EXEC masks that differ per
    // lane and per row (wall costs are random): the extraction must produce
    // lane-dependent VGPR timelines for it, while lock-step workloads keep
    // all 64 lanes identical.
    let p = pipeline("pathfinder");
    let geom = p.vgpr_geom;
    let mut any_divergent = false;
    for reg in 0..geom.regs {
        let first = p.vgpr.byte(geom.byte_index(0, reg, 0) as usize);
        for thread in 1..geom.threads {
            let other = p.vgpr.byte(geom.byte_index(thread, reg, 0) as usize);
            if other != first {
                any_divergent = true;
            }
        }
    }
    assert!(any_divergent, "pathfinder must show lane-divergent register lifetimes");

    // Lock-step control: dct's registers stay identical across lanes.
    let d = pipeline("dct");
    let geom = d.vgpr_geom;
    for reg in 0..geom.regs {
        let first = d.vgpr.byte(geom.byte_index(0, reg, 0) as usize);
        for thread in 1..geom.threads {
            assert_eq!(
                d.vgpr.byte(geom.byte_index(thread, reg, 0) as usize),
                first,
                "lock-step kernels must keep lanes identical (reg {reg} thread {thread})"
            );
        }
    }
}
