//! Cross-validation of the ACE-analysis model against fault injection —
//! the spirit of the paper's Section VII-A accuracy study, applied to the
//! whole stack: the VGPR SDC AVF estimated from timelines should agree with
//! the SDC rate measured by random single-bit injection.
//!
//! The two measures weight time differently (the model integrates over
//! *cycles* of the timed run; injection samples *dynamic instructions* of
//! the functional run), so agreement is expected within a small factor, not
//! exactly.

use mbavf::core::analysis::{mb_avf, AnalysisConfig};
use mbavf::core::geometry::FaultMode;
use mbavf::core::layout::{VgprInterleave, VgprLayout};
use mbavf::core::protection::ProtectionKind;
use mbavf::inject::{single_bit_campaign, CampaignConfig};
use mbavf::sim::extract::vgpr_timelines;
use mbavf::sim::liveness::analyze;
use mbavf::sim::{run_timed, GpuConfig};
use mbavf::workloads::{by_name, Scale};

fn model_sdc_avf(name: &str) -> f64 {
    let w = by_name(name).expect("registered");
    let mut inst = w.build(Scale::Test);
    let program = inst.program.clone();
    let res = run_timed(&program, &mut inst.mem, inst.workgroups, &GpuConfig::default());
    let lv = analyze(&res.trace, &inst.mem);
    let (vgpr, geom) = vgpr_timelines(&res, &lv, 0);
    // Sanity: the full-file 1x1 unprotected SDC AVF is computable.
    let layout = VgprLayout::new(geom, VgprInterleave::IntraThread(1)).unwrap();
    let cfg = AnalysisConfig::new(ProtectionKind::None);
    let _full = mb_avf(&vgpr, &layout, &FaultMode::mx1(1), &cfg).unwrap().sdc_avf();
    // For the injection comparison, restrict to the registers injection can
    // target: wavefront slot 0's architectural registers (injection never
    // hits the unused slots of the physical file).
    let nv = u32::from(program.num_vregs());
    let mut ace: u128 = 0;
    let mut bits: u64 = 0;
    for reg in 0..nv {
        for thread in 0..geom.threads {
            for byte in 0..4 {
                let tl = vgpr.byte(geom.byte_index(thread, reg, byte) as usize);
                ace += tl.ace_bit_cycles();
                bits += 8;
            }
        }
    }
    ace as f64 / (bits as f64 * vgpr.total_cycles() as f64)
}

fn injected_sdc_rate(name: &str, n: usize) -> f64 {
    let w = by_name(name).expect("registered");
    let cfg =
        CampaignConfig { seed: 99, injections: n, scale: Scale::Test, ..CampaignConfig::default() };
    let summary = single_bit_campaign(&w, &cfg);
    let f = summary.fractions();
    // Crashes count as visible errors alongside hangs for this comparison
    // (both are fault-induced failures the model folds into non-masked).
    f.sdc + f.hang + f.crash
}

#[test]
fn model_and_injection_agree_on_vgpr_sdc() {
    for name in ["dct", "fast_walsh"] {
        let model = model_sdc_avf(name);
        let measured = injected_sdc_rate(name, 250);
        assert!(model > 0.0, "{name}: model found no vulnerable register state");
        assert!(measured > 0.0, "{name}: injection found no SDC");
        let ratio = model / measured;
        assert!(
            (0.2..=5.0).contains(&ratio),
            "{name}: model SDC AVF {model:.4} vs injected rate {measured:.4} (ratio {ratio:.2})"
        );
    }
}

#[test]
fn model_is_an_upper_bound_in_expectation() {
    // ACE analysis is conservative: averaged across several workloads, the
    // model should not *under*estimate the injected SDC rate by a wide
    // margin. (It may overestimate freely.)
    let names = ["dct", "transpose", "prefix_sum"];
    let mut model_sum = 0.0;
    let mut measured_sum = 0.0;
    for name in names {
        model_sum += model_sdc_avf(name);
        measured_sum += injected_sdc_rate(name, 150);
    }
    assert!(
        model_sum >= measured_sum * 0.5,
        "aggregate model {model_sum:.4} far below injection {measured_sum:.4}"
    );
}
