//! Property-based invariants of the MB-AVF analysis over randomized
//! timelines, layouts, fault modes, and protection schemes.

use mbavf::core::analysis::{mb_avf, windowed_mb_avf, AnalysisConfig};
use mbavf::core::geometry::FaultMode;
use mbavf::core::layout::LinearLayout;
use mbavf::core::protection::ProtectionKind;
use mbavf::core::timeline::{Interval, TimelineStore};
use proptest::prelude::*;

const TOTAL: u64 = 400;

/// A random, valid timeline store over `bytes` bytes.
fn arb_store(bytes: usize) -> impl Strategy<Value = TimelineStore> {
    // Per byte: a list of (gap, len, mask, checked) interval specs.
    let iv = (1u64..40, 1u64..60, any::<u8>(), any::<bool>());
    proptest::collection::vec(proptest::collection::vec(iv, 0..8), bytes).prop_map(
        move |per_byte| {
            let mut store = TimelineStore::new(per_byte.len(), TOTAL);
            for (b, specs) in per_byte.iter().enumerate() {
                let mut t = 0u64;
                for &(gap, len, mask, checked) in specs {
                    let start = t + gap;
                    let end = (start + len).min(TOTAL);
                    if start >= end {
                        break;
                    }
                    store
                        .byte_mut(b)
                        .push(Interval { start, end, ace_mask: mask, checked })
                        .expect("ordered by construction");
                    t = end;
                }
            }
            store
        },
    )
}

fn arb_scheme() -> impl Strategy<Value = ProtectionKind> {
    prop_oneof![
        Just(ProtectionKind::None),
        Just(ProtectionKind::Parity),
        Just(ProtectionKind::SecDed),
        Just(ProtectionKind::DecTed),
        Just(ProtectionKind::Crc { burst_detect: 4 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// AVF components are probabilities and partition at most the whole.
    #[test]
    fn avf_components_are_well_formed(
        store in arb_store(8),
        scheme in arb_scheme(),
        m in 1u32..6,
        dpd in any::<bool>(),
        domain_bits in 1u32..16,
    ) {
        let layout = LinearLayout::new(1, 64, domain_bits);
        let cfg = AnalysisConfig::new(scheme).with_due_preempts_sdc(dpd);
        let r = mb_avf(&store, &layout, &FaultMode::mx1(m), &cfg).unwrap();
        prop_assert!(r.sdc_avf() >= 0.0 && r.sdc_avf() <= 1.0);
        prop_assert!(r.due_avf() >= 0.0 && r.due_avf() <= 1.0);
        prop_assert!(r.total_avf() <= 1.0 + 1e-12);
        prop_assert!((r.total_avf() - (r.sdc_avf() + r.due_avf())).abs() < 1e-12);
    }

    /// No protection is the SDC worst case for every mode and layout.
    #[test]
    fn unprotected_is_sdc_worst_case(
        store in arb_store(8),
        scheme in arb_scheme(),
        m in 1u32..6,
        domain_bits in 1u32..16,
    ) {
        let layout = LinearLayout::new(1, 64, domain_bits);
        let mode = FaultMode::mx1(m);
        let none = mb_avf(&store, &layout, &mode,
            &AnalysisConfig::new(ProtectionKind::None)).unwrap();
        let prot = mb_avf(&store, &layout, &mode, &AnalysisConfig::new(scheme)).unwrap();
        prop_assert!(prot.sdc_avf() <= none.sdc_avf() + 1e-12,
            "{scheme:?} m={m}: {} > {}", prot.sdc_avf(), none.sdc_avf());
    }

    /// The lock-step rule only reclassifies SDC as DUE: totals invariant.
    #[test]
    fn lockstep_preserves_total(
        store in arb_store(8),
        scheme in arb_scheme(),
        m in 1u32..6,
        domain_bits in 1u32..16,
    ) {
        let layout = LinearLayout::new(1, 64, domain_bits);
        let mode = FaultMode::mx1(m);
        let base = mb_avf(&store, &layout, &mode, &AnalysisConfig::new(scheme)).unwrap();
        let locked = mb_avf(&store, &layout, &mode,
            &AnalysisConfig::new(scheme).with_due_preempts_sdc(true)).unwrap();
        prop_assert!((base.total_avf() - locked.total_avf()).abs() < 1e-12);
        prop_assert!(locked.sdc_avf() <= base.sdc_avf() + 1e-12);
    }

    /// Windowed results partition the whole-run result exactly.
    #[test]
    fn windows_partition_the_total(
        store in arb_store(6),
        scheme in arb_scheme(),
        m in 1u32..5,
        window in 1u64..500,
    ) {
        let layout = LinearLayout::new(1, 48, 8);
        let mode = FaultMode::mx1(m);
        let cfg = AnalysisConfig::new(scheme);
        let total = mb_avf(&store, &layout, &mode, &cfg).unwrap();
        let parts = windowed_mb_avf(&store, &layout, &mode, &cfg, window).unwrap();
        let sdc: u128 = parts.iter().map(|p| p.sdc_group_cycles()).sum();
        let t: u128 = parts.iter().map(|p| p.true_due_group_cycles()).sum();
        let f: u128 = parts.iter().map(|p| p.false_due_group_cycles()).sum();
        prop_assert_eq!(sdc, total.sdc_group_cycles());
        prop_assert_eq!(t, total.true_due_group_cycles());
        prop_assert_eq!(f, total.false_due_group_cycles());
        let cycles: u64 = parts.iter().map(|p| p.cycles()).sum();
        prop_assert_eq!(cycles, TOTAL);
    }

    /// Growing the fault mode never shrinks the unprotected SDC AVF
    /// (a bigger fault can only cover more ACE state per group).
    #[test]
    fn unprotected_sdc_monotone_in_mode_size(
        store in arb_store(8),
        m in 1u32..5,
    ) {
        let layout = LinearLayout::new(1, 64, 64);
        let cfg = AnalysisConfig::new(ProtectionKind::None);
        let small = mb_avf(&store, &layout, &FaultMode::mx1(m), &cfg).unwrap();
        let big = mb_avf(&store, &layout, &FaultMode::mx1(m + 1), &cfg).unwrap();
        // Compare group-cycle *fractions*; group counts differ by one.
        prop_assert!(big.sdc_avf() >= small.sdc_avf() * 0.98 - 1e-12,
            "m={} small {} big {}", m, small.sdc_avf(), big.sdc_avf());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The real SEC-DED codec honours the abstract ladder for 1 and 2 flips
    /// on arbitrary data words.
    #[test]
    fn secded_codec_matches_model(data in any::<u32>(), i in 0u32..39, j in 0u32..39) {
        use mbavf::core::ecc::{Decoded, SecDed};
        let code = SecDed::new(32);
        let cw = code.encode(u64::from(data));
        prop_assert_eq!(code.decode(cw), Decoded::Ok(u64::from(data)));
        let one = code.decode(cw ^ (1u128 << i));
        prop_assert_eq!(one, Decoded::Corrected { data: u64::from(data), bits: 1 });
        if i != j {
            prop_assert_eq!(code.decode(cw ^ (1u128 << i) ^ (1u128 << j)), Decoded::Detected);
        }
    }

    /// The real DEC-TED codec corrects any double and never mis-decodes it.
    #[test]
    fn dected_codec_matches_model(data in any::<u32>(), i in 0u32..45, j in 0u32..45) {
        use mbavf::core::ecc::{Decoded, DecTed};
        let code = DecTed::new();
        let cw = code.encode(data);
        if i != j {
            match code.decode(cw ^ (1u64 << i) ^ (1u64 << j)) {
                Decoded::Corrected { data: d, bits: 2 } => prop_assert_eq!(d, data),
                other => prop_assert!(false, "bits {},{}: {:?}", i, j, other),
            }
        }
    }
}
